//! Semiring-weighted evaluation (the generalised inside algorithm).
//!
//! Counting parse trees, recognising, finding shortest/longest yields and
//! computing Viterbi probabilities are all the *same* dynamic program over
//! different semirings. This module provides the [`Semiring`] abstraction
//! and the length-indexed inside algorithm over CNF grammars; the
//! provenance-polynomial connection (\[28\] in the paper: factorised
//! representations of provenance) is exercised by the polynomial semiring
//! in the tests.
//!
//! For *unambiguous* grammars the count semiring value is the number of
//! words — the recurring theme that aggregation is easy exactly when the
//! representation is unambiguous/deterministic.
//!
//! ```
//! use ucfg_grammar::normal_form::CnfGrammar;
//! use ucfg_grammar::text::parse_grammar;
//! use ucfg_grammar::weighted::{inside_at, Count, MinPlus, TableWeights, UnitWeights};
//!
//! let g = parse_grammar("S -> A A\nA -> a | b\n").unwrap();
//! let cnf = CnfGrammar::from_grammar(&g);
//! // Counting: 4 words of length 2.
//! let Count(total) = inside_at(&cnf, &UnitWeights, 2);
//! assert_eq!(total.to_u64(), Some(4));
//! // Tropical: cheapest word when a costs 3 and b costs 1.
//! let w = TableWeights(vec![MinPlus(Some(3)), MinPlus(Some(1))]);
//! assert_eq!(inside_at(&cnf, &w, 2), MinPlus(Some(2))); // bb
//! ```

use crate::bignum::BigUint;
use crate::normal_form::CnfGrammar;
use crate::symbol::Terminal;

/// A commutative semiring `(⊕, ⊗, 0, 1)`.
pub trait Semiring: Clone {
    /// The additive identity.
    fn zero() -> Self;
    /// The multiplicative identity.
    fn one() -> Self;
    /// Addition (choice between derivations).
    fn add(&self, other: &Self) -> Self;
    /// Multiplication (combination within a derivation).
    fn mul(&self, other: &Self) -> Self;
    /// Is this the additive identity? (Used for pruning.)
    fn is_zero(&self) -> bool;
}

/// Assigns a semiring weight to each terminal-rule application.
pub trait TerminalWeight<S: Semiring> {
    /// Weight of deriving terminal `t` (from any non-terminal).
    fn weight(&self, t: Terminal) -> S;
}

/// Weight every terminal by `1` — pure structure counting.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnitWeights;

impl<S: Semiring> TerminalWeight<S> for UnitWeights {
    fn weight(&self, _t: Terminal) -> S {
        S::one()
    }
}

/// The Boolean semiring: recognition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bool(pub bool);

impl Semiring for Bool {
    fn zero() -> Self {
        Bool(false)
    }
    fn one() -> Self {
        Bool(true)
    }
    fn add(&self, other: &Self) -> Self {
        Bool(self.0 || other.0)
    }
    fn mul(&self, other: &Self) -> Self {
        Bool(self.0 && other.0)
    }
    fn is_zero(&self) -> bool {
        !self.0
    }
}

/// The counting semiring ℕ (with big integers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Count(pub BigUint);

impl Semiring for Count {
    fn zero() -> Self {
        Count(BigUint::zero())
    }
    fn one() -> Self {
        Count(BigUint::one())
    }
    fn add(&self, other: &Self) -> Self {
        Count(&self.0 + &other.0)
    }
    fn mul(&self, other: &Self) -> Self {
        Count(&self.0 * &other.0)
    }
    fn is_zero(&self) -> bool {
        self.0.is_zero()
    }
}

/// The tropical (min, +) semiring over `u64` with `∞` as zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinPlus(pub Option<u64>);

impl Semiring for MinPlus {
    fn zero() -> Self {
        MinPlus(None)
    }
    fn one() -> Self {
        MinPlus(Some(0))
    }
    fn add(&self, other: &Self) -> Self {
        MinPlus(match (self.0, other.0) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        })
    }
    fn mul(&self, other: &Self) -> Self {
        MinPlus(match (self.0, other.0) {
            (Some(a), Some(b)) => Some(a + b),
            _ => None,
        })
    }
    fn is_zero(&self) -> bool {
        self.0.is_none()
    }
}

/// The Viterbi semiring (max, ×) over probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Viterbi(pub f64);

impl Semiring for Viterbi {
    fn zero() -> Self {
        Viterbi(0.0)
    }
    fn one() -> Self {
        Viterbi(1.0)
    }
    fn add(&self, other: &Self) -> Self {
        Viterbi(self.0.max(other.0))
    }
    fn mul(&self, other: &Self) -> Self {
        Viterbi(self.0 * other.0)
    }
    fn is_zero(&self) -> bool {
        self.0 == 0.0
    }
}

/// A (sparse, small) multivariate polynomial with ℕ coefficients —
/// the provenance "why" semiring, one variable per terminal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poly {
    /// Monomials: sorted exponent vectors → coefficient.
    pub terms: std::collections::BTreeMap<Vec<u32>, u64>,
    /// Number of variables.
    pub vars: usize,
}

impl Poly {
    /// The variable `x_i` among `vars` variables.
    pub fn var(i: usize, vars: usize) -> Self {
        let mut e = vec![0u32; vars];
        e[i] = 1;
        Poly {
            terms: std::collections::BTreeMap::from([(e, 1)]),
            vars,
        }
    }

    /// Total number of monomials.
    pub fn monomials(&self) -> usize {
        self.terms.len()
    }

    /// Evaluate at a point (for cross-checks against direct counting).
    pub fn eval(&self, xs: &[u64]) -> u64 {
        self.terms
            .iter()
            .map(|(e, &c)| c * e.iter().zip(xs).map(|(&p, &x)| x.pow(p)).product::<u64>())
            .sum()
    }
}

impl Semiring for Poly {
    fn zero() -> Self {
        Poly {
            terms: std::collections::BTreeMap::new(),
            vars: 0,
        }
    }
    fn one() -> Self {
        Poly {
            terms: std::collections::BTreeMap::from([(Vec::new(), 1)]),
            vars: 0,
        }
    }
    fn add(&self, other: &Self) -> Self {
        let vars = self.vars.max(other.vars);
        let mut terms = std::collections::BTreeMap::new();
        for (e, &c) in self.terms.iter().chain(other.terms.iter()) {
            let mut e = e.clone();
            e.resize(vars, 0);
            *terms.entry(e).or_insert(0) += c;
        }
        Poly { terms, vars }
    }
    fn mul(&self, other: &Self) -> Self {
        let vars = self.vars.max(other.vars);
        let mut terms = std::collections::BTreeMap::new();
        for (e1, &c1) in &self.terms {
            for (e2, &c2) in &other.terms {
                let mut e = e1.clone();
                e.resize(vars, 0);
                for (i, &x) in e2.iter().enumerate() {
                    e[i] += x;
                }
                *terms.entry(e).or_insert(0) += c1 * c2;
            }
        }
        Poly { terms, vars }
    }
    fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }
}

/// The inside algorithm: `table[A][l-1]` = ⊕ over parse trees of length-`l`
/// words from `A` of the ⊗ of their terminal weights.
pub fn inside<S: Semiring>(
    g: &CnfGrammar,
    weights: &impl TerminalWeight<S>,
    max_len: usize,
) -> Vec<Vec<S>> {
    let nts = g.nonterminal_count();
    let mut table: Vec<Vec<S>> = vec![vec![S::zero(); max_len]; nts];
    if max_len == 0 {
        return table;
    }
    for &(a, t) in g.term_rules() {
        let w = weights.weight(t);
        table[a.index()][0] = table[a.index()][0].add(&w);
    }
    for l in 2..=max_len {
        for &(a, b, c) in g.bin_rules() {
            let mut acc = S::zero();
            for k in 1..l {
                let lb = &table[b.index()][k - 1];
                let rc = &table[c.index()][l - k - 1];
                if lb.is_zero() || rc.is_zero() {
                    continue;
                }
                acc = acc.add(&lb.mul(rc));
            }
            if !acc.is_zero() {
                table[a.index()][l - 1] = table[a.index()][l - 1].add(&acc);
            }
        }
    }
    table
}

/// The start symbol's inside value at exactly `len`.
pub fn inside_at<S: Semiring>(g: &CnfGrammar, weights: &impl TerminalWeight<S>, len: usize) -> S {
    if len == 0 {
        return if g.accepts_epsilon() {
            S::one()
        } else {
            S::zero()
        };
    }
    inside(g, weights, len)[g.start().index()][len - 1].clone()
}

/// Terminal weights from an explicit per-terminal table.
#[derive(Debug, Clone)]
pub struct TableWeights<S>(pub Vec<S>);

impl<S: Semiring> TerminalWeight<S> for TableWeights<S> {
    fn weight(&self, t: Terminal) -> S {
        self.0[t.index()].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GrammarBuilder;
    use crate::count::derivation_counts_by_length;

    fn pairs() -> CnfGrammar {
        let mut b = GrammarBuilder::new(&['a', 'b']);
        let s = b.nonterminal("S");
        let a = b.nonterminal("A");
        b.rule(s, |r| r.n(a).n(a));
        b.rule(a, |r| r.t('a'));
        b.rule(a, |r| r.t('b'));
        CnfGrammar::from_grammar(&b.build(s))
    }

    fn catalan() -> CnfGrammar {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.rule(s, |r| r.n(s).n(s));
        b.rule(s, |r| r.t('a'));
        CnfGrammar::from_grammar(&b.build(s))
    }

    #[test]
    fn count_semiring_matches_dedicated_counting() {
        for g in [pairs(), catalan()] {
            let direct = derivation_counts_by_length(&g, 6);
            for (l, d) in direct.iter().enumerate().skip(1) {
                let Count(v) = inside_at(&g, &UnitWeights, l);
                assert_eq!(v, *d, "length {l}");
            }
        }
    }

    #[test]
    fn boolean_semiring_is_nonemptiness_per_length() {
        let g = pairs();
        assert!(!inside_at::<Bool>(&g, &UnitWeights, 1).0);
        assert!(inside_at::<Bool>(&g, &UnitWeights, 2).0);
        assert!(!inside_at::<Bool>(&g, &UnitWeights, 3).0);
    }

    #[test]
    fn tropical_semiring_finds_cheapest_word() {
        // Cost: a = 5, b = 1. Cheapest length-2 word is bb with cost 2.
        let g = pairs();
        let w = TableWeights(vec![MinPlus(Some(5)), MinPlus(Some(1))]);
        assert_eq!(inside_at(&g, &w, 2), MinPlus(Some(2)));
        assert_eq!(inside_at(&g, &w, 3), MinPlus(None));
    }

    #[test]
    fn viterbi_best_derivation_probability() {
        // P(a) = 0.9, P(b) = 0.1: best length-2 tree has prob 0.81.
        let g = pairs();
        let w = TableWeights(vec![Viterbi(0.9), Viterbi(0.1)]);
        let v = inside_at(&g, &w, 2);
        assert!((v.0 - 0.81).abs() < 1e-12);
    }

    #[test]
    fn provenance_polynomial_tracks_terminal_usage() {
        // Variables x₀ for 'a', x₁ for 'b'; the length-2 inside value is
        // x₀² + 2x₀x₁ + x₁² = (x₀ + x₁)².
        let g = pairs();
        let w = TableWeights(vec![Poly::var(0, 2), Poly::var(1, 2)]);
        let p = inside_at(&g, &w, 2);
        assert_eq!(p.monomials(), 3);
        assert_eq!(p.eval(&[1, 1]), 4); // #words
        assert_eq!(p.eval(&[1, 0]), 1); // only aa survives b ↦ 0
        assert_eq!(p.eval(&[2, 3]), 25); // (2+3)²
    }

    #[test]
    fn provenance_on_ambiguous_grammar_counts_trees() {
        let g = catalan();
        let w = TableWeights(vec![Poly::var(0, 1)]);
        let p = inside_at(&g, &w, 4);
        // 5 trees, all with monomial x⁴.
        assert_eq!(p.monomials(), 1);
        assert_eq!(p.eval(&[1]), 5);
    }

    #[test]
    fn zero_pruning_consistency() {
        // MinPlus zero (∞) must propagate like Count zero.
        let g = pairs();
        for l in 1..=4usize {
            let c = inside_at::<Count>(&g, &UnitWeights, l);
            let m = inside_at::<MinPlus>(&g, &UnitWeights, l);
            assert_eq!(c.is_zero(), m.is_zero(), "length {l}");
        }
    }

    #[test]
    fn epsilon_handling() {
        let mut b = GrammarBuilder::new(&['a']);
        let s = b.nonterminal("S");
        b.epsilon_rule(s);
        b.rule(s, |r| r.t('a'));
        let g = CnfGrammar::from_grammar(&b.build(s));
        assert_eq!(inside_at::<Count>(&g, &UnitWeights, 0).0.to_u64(), Some(1));
    }
}
