//! Worker shards: per-shard artifact cache + batch queue, keyed by
//! content hash.
//!
//! The event loop routes every compute job to a shard by **rendezvous
//! (highest-random-weight) hashing** of its cache key
//! ([`Grammar::content_hash`](ucfg_grammar::Grammar::content_hash) for
//! `/parse`, [`RectRequest::cache_key`](crate::protocol::RectRequest)
//! for the rectangle endpoints): shard = argmax over `i` of
//! `fnv1a(key, i)`. That gives the two properties the cache wants —
//! the same key always lands on the same shard (so a grammar's
//! artifact is compiled once, not once per shard), and changing the
//! shard count remaps only the keys whose argmax moved (no global
//! reshuffle).
//!
//! Each shard owns a [`Scheduler`] drained by its own thread
//! (`ucfg-serve-shard-<i>`) and an [`ArtifactCache`] slice of the
//! configured total capacity. Shard *placement* depends on
//! `--shards`, so per-shard counters are volatile instruments; the
//! deterministic stratum only carries aggregates that are invariant
//! across shard layouts (responses themselves stay byte-identical
//! because each job's result is a pure function of the request).

use crate::batch::{Scheduler, SessionStore, MAX_SESSIONS_PER_SHARD};
use crate::cache::ArtifactCache;
use std::io;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;
use ucfg_support::fnv::Fnv1a;

/// One worker shard: a cache and a batch queue with its drain thread.
pub struct Shard {
    /// The shard's index (names its thread and volatile counters).
    pub index: usize,
    /// This shard's slice of the artifact cache.
    pub cache: Mutex<ArtifactCache>,
    /// This shard's bounded batch queue.
    pub sched: Scheduler,
    /// This shard's live stream sessions (rendezvous-routed by the
    /// deterministic session id, like cache keys).
    pub sessions: Mutex<SessionStore>,
}

/// The fixed set of shards behind a server.
pub struct ShardSet {
    shards: Vec<Arc<Shard>>,
}

impl ShardSet {
    /// Build `count` shards (min 1). `cache_capacity` is the *total*
    /// across shards, split evenly (rounded up); `queue_depth` and
    /// `deadline` apply per shard.
    pub fn new(
        count: usize,
        cache_capacity: usize,
        queue_depth: usize,
        deadline: Duration,
    ) -> ShardSet {
        let count = count.max(1);
        let per_shard_cache = cache_capacity.div_ceil(count);
        let shards = (0..count)
            .map(|index| {
                Arc::new(Shard {
                    index,
                    cache: Mutex::new(ArtifactCache::with_shard(per_shard_cache, index)),
                    sched: Scheduler::new(queue_depth, deadline),
                    sessions: Mutex::new(SessionStore::new(MAX_SESSIONS_PER_SHARD)),
                })
            })
            .collect();
        ShardSet { shards }
    }

    /// How many shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Never true — there is always at least one shard.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// All shards, for aggregation (e.g. summing queue depths).
    pub fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    /// The shard responsible for `key`, by rendezvous hashing.
    pub fn pick(&self, key: u64) -> &Arc<Shard> {
        let winner = self
            .shards
            .iter()
            .max_by_key(|s| Fnv1a::new().write_u64(key).write_usize(s.index).finish())
            .expect("at least one shard");
        winner
    }

    /// Total queued jobs across shards (for `/healthz`).
    pub fn queue_len(&self) -> usize {
        self.shards.iter().map(|s| s.sched.queue_len()).sum()
    }

    /// Total live stream sessions across shards (for `/healthz`).
    pub fn session_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.sessions.lock().expect("sessions poisoned").len())
            .sum()
    }

    /// Spawn one drain thread per shard. Join the handles after
    /// [`ShardSet::stop`].
    pub fn spawn(&self) -> io::Result<Vec<thread::JoinHandle<()>>> {
        self.shards
            .iter()
            .map(|s| {
                let shard = Arc::clone(s);
                thread::Builder::new()
                    .name(format!("ucfg-serve-shard-{}", shard.index))
                    .spawn(move || shard.sched.run(&shard.cache, &shard.sessions))
            })
            .collect()
    }

    /// Ask every shard's drain loop to exit once its queue is empty.
    pub fn stop(&self) {
        for s in &self.shards {
            s.sched.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(count: usize) -> ShardSet {
        ShardSet::new(count, 64, 16, Duration::from_secs(5))
    }

    #[test]
    fn pick_is_stable_and_total() {
        let s4 = set(4);
        for key in [0u64, 1, 0xdead_beef, u64::MAX] {
            let a = s4.pick(key).index;
            let b = s4.pick(key).index;
            assert_eq!(a, b, "same key, same shard");
            assert!(a < 4);
        }
    }

    #[test]
    fn keys_spread_across_shards() {
        let s4 = set(4);
        let mut seen = [false; 4];
        for key in 0..256u64 {
            seen[s4.pick(key).index] = true;
        }
        assert!(seen.iter().all(|&s| s), "256 keys must touch all 4 shards");
    }

    #[test]
    fn rendezvous_moves_few_keys_when_growing() {
        // Growing 4 → 5 shards may only remap keys onto the *new*
        // shard: any key whose winner is still in {0..3} keeps it.
        let s4 = set(4);
        let s5 = set(5);
        for key in 0..512u64 {
            let old = s4.pick(key).index;
            let new = s5.pick(key).index;
            assert!(new == old || new == 4, "key {key}: {old} -> {new}");
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        let s1 = set(1);
        for key in 0..32u64 {
            assert_eq!(s1.pick(key).index, 0);
        }
    }

    #[test]
    fn spawn_drain_stop_joins_cleanly() {
        let s = set(3);
        let handles = s.spawn().unwrap();
        assert_eq!(handles.len(), 3);
        s.stop();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn cache_capacity_splits_rounded_up() {
        // 64 total over 3 shards → 22 each; just check construction
        // and that queue_len starts at 0.
        let s = ShardSet::new(3, 64, 16, Duration::from_secs(5));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.queue_len(), 0);
    }
}
