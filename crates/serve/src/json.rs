//! A minimal JSON value, parser, and single-line writer.
//!
//! The workspace is hermetic, so the wire format is hand-rolled. The
//! subset is deliberately small but closed under everything the
//! protocol needs: objects (insertion-ordered, so rendering is
//! deterministic), arrays, strings with `\uXXXX` escapes, `i64`
//! integers, finite floats, booleans and null.
//!
//! Rendering is always a single line — the protocol is JSON-lines, one
//! request or response per line — and renders a value parsed from
//! canonical output back to the same bytes.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (the protocol's numbers are ids, sizes, and ports).
    Int(i64),
    /// A non-integer number; accepted on input, rendered with `{:?}`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered for deterministic rendering.
    Obj(Vec<(String, Json)>),
}

/// A parse error: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(src: &str) -> Result<Json, JsonError> {
        let bytes = src.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Render as a single line with no insignificant whitespace.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(x) => {
                let _ = write!(out, "{x:?}");
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The integer payload as a `usize`, if integral and non-negative.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_i64().and_then(|i| usize::try_from(i).ok())
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Convenience constructor for an object.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Nesting depth bound: the protocol never nests deeper than a few
/// levels, and the recursive-descent parser must not let untrusted
/// input exhaust the stack.
const MAX_DEPTH: usize = 32;

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: accept, combine; lone
                            // surrogates are rejected.
                            if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u', "expected low surrogate")?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    out.push(
                                        char::from_u32(c)
                                            .ok_or_else(|| self.err("invalid code point"))?,
                                    );
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid code point"))?,
                                );
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("control character in string")),
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid utf-8"))?;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated utf-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            let x: f64 = text.parse().map_err(|_| self.err("bad number"))?;
            if !x.is_finite() {
                return Err(self.err("non-finite number"));
            }
            Ok(Json::Float(x))
        } else {
            let i: i64 = text.parse().map_err(|_| self.err("bad number"))?;
            Ok(Json::Int(i))
        }
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_the_protocol_shapes() {
        for src in [
            r#"{"grammar":"S -> a S | b","word":"aab"}"#,
            r#"{"builtin":"example4","n":3,"word":"ab"}"#,
            r#"{"member":true,"parse_count":"5","ambiguous":true}"#,
            r#"{"discrepancies":[-1,0,27],"sums_to_gap":false}"#,
            r#"[1,[2,[3,null]],{"k":[]}]"#,
            r#""ε and \"quotes\"""#,
            r#"-42"#,
            r#"{}"#,
        ] {
            let v = Json::parse(src).unwrap_or_else(|e| panic!("{src}: {e}"));
            assert_eq!(v.render(), src, "canonical roundtrip");
            // And render→parse is the identity again.
            assert_eq!(Json::parse(&v.render()).unwrap(), v);
        }
    }

    #[test]
    fn parses_whitespace_and_floats() {
        let v = Json::parse(" { \"x\" :\t1.5 , \"y\": [ 1 , 2 ] }\n").unwrap();
        assert_eq!(v.get("x"), Some(&Json::Float(1.5)));
        assert_eq!(
            v.get("y"),
            Some(&Json::Arr(vec![Json::Int(1), Json::Int(2)]))
        );
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::parse(r#""aé\n\t\\\" \u0001""#).unwrap();
        assert_eq!(v.as_str(), Some("aé\n\t\\\" \u{1}"));
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
        // Control characters never appear raw in output.
        assert!(!rendered.contains('\u{1}'));
    }

    #[test]
    fn surrogate_pairs_combine() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1 2",
            "{\"a\":1,}",
            "\"unterminated",
            "nul",
            "[1,2,",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"s":"x","i":7,"b":true,"neg":-1}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("i").and_then(Json::as_usize), Some(7));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("neg").and_then(Json::as_usize), None);
        assert_eq!(v.get("missing"), None);
    }
}
