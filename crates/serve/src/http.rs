//! A minimal HTTP/1.1 reader/writer over any `Read`/`Write` pair.
//!
//! Just enough of RFC 9112 for the JSON-lines protocol: request line,
//! headers, `Content-Length` bodies, keep-alive. No chunked transfer
//! coding, no multipart, no TLS. Parsing is generic over [`BufRead`] so
//! it unit-tests on in-memory buffers and the server/client share one
//! implementation.

use std::io::{self, BufRead, Write};

/// Largest accepted request body; grammars are text, so 1 MiB is
/// already generous and the bound keeps a rogue client from ballooning
/// the process.
pub const MAX_BODY_BYTES: usize = 1 << 20;
/// Largest accepted request line or header line.
pub const MAX_LINE_BYTES: usize = 8 << 10;
/// Maximum number of headers per request.
pub const MAX_HEADERS: usize = 64;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, …, uppercased by the client already.
    pub method: String,
    /// The path, e.g. `/parse` (query strings are kept verbatim).
    pub path: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (may be empty).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Did the client ask to close the connection after this exchange?
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The body as UTF-8, or `None` if it isn't.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// Outcome of one read attempt on a keep-alive connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request was read.
    Request(Request),
    /// The peer closed the connection cleanly between requests.
    Eof,
    /// The read timed out before *any* byte arrived — the connection is
    /// idle, not broken; the caller decides whether to keep waiting
    /// (e.g. until shutdown is signalled).
    Idle,
    /// The peer sent something that is not HTTP or exceeded a bound;
    /// the caller should answer 400 (message included) and close.
    Malformed(String),
}

/// Read one request. Timeouts that strike *before* the first byte
/// surface as [`ReadOutcome::Idle`]; mid-request timeouts and any other
/// I/O error propagate as `Err` (the connection is unusable).
pub fn read_request(reader: &mut impl BufRead) -> io::Result<ReadOutcome> {
    // Peek for the first byte so an idle keep-alive connection can be
    // distinguished from a broken one.
    match reader.fill_buf() {
        Ok([]) => return Ok(ReadOutcome::Eof),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            return Ok(ReadOutcome::Idle)
        }
        Err(e) => return Err(e),
    }

    let line = match read_line(reader)? {
        LineRead::Line(l) => l,
        LineRead::Eof => return Ok(ReadOutcome::Eof),
        LineRead::Malformed(msg) => return Ok(ReadOutcome::Malformed(msg)),
    };
    let mut parts = line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => return Ok(ReadOutcome::Malformed(format!("bad request line {line:?}"))),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Ok(ReadOutcome::Malformed(format!("bad version {version:?}")));
    }

    let mut headers = Vec::new();
    loop {
        let line = match read_line(reader)? {
            LineRead::Line(l) => l,
            LineRead::Eof => return Ok(ReadOutcome::Malformed("eof in headers".into())),
            LineRead::Malformed(msg) => return Ok(ReadOutcome::Malformed(msg)),
        };
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Ok(ReadOutcome::Malformed("too many headers".into()));
        }
        match line.split_once(':') {
            Some((name, value)) => {
                headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()))
            }
            None => return Ok(ReadOutcome::Malformed(format!("bad header {line:?}"))),
        }
    }

    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Ok(ReadOutcome::Malformed(
            "chunked transfer coding not supported".into(),
        ));
    }

    let len = match headers.iter().find(|(k, _)| k == "content-length") {
        None => 0,
        Some((_, v)) => match v.parse::<usize>() {
            Ok(n) if n <= MAX_BODY_BYTES => n,
            Ok(_) => return Ok(ReadOutcome::Malformed("body too large".into())),
            Err(_) => return Ok(ReadOutcome::Malformed(format!("bad content-length {v:?}"))),
        },
    };

    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;

    Ok(ReadOutcome::Request(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    }))
}

/// Outcome of reading one line: protocol-level problems (over-long or
/// non-UTF-8 lines) are data the *peer* sent, so they surface as
/// [`LineRead::Malformed`] and earn a wire-level 400 — only genuine I/O
/// failures (including EOF mid-line) come back as `Err`.
enum LineRead {
    /// A complete line, terminator stripped.
    Line(String),
    /// EOF before any byte of the line.
    Eof,
    /// The peer sent a line we refuse to parse; answer 400.
    Malformed(String),
}

/// Read a CRLF- (or bare-LF-) terminated line, without the terminator.
fn read_line(reader: &mut impl BufRead) -> io::Result<LineRead> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                return if buf.is_empty() {
                    Ok(LineRead::Eof)
                } else {
                    Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof mid-line"))
                }
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    return Ok(match String::from_utf8(chomp_cr(buf)) {
                        Ok(s) => LineRead::Line(s),
                        Err(_) => LineRead::Malformed("non-utf8 line".into()),
                    });
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE_BYTES {
                    // No need to drain to the terminator: the caller
                    // answers 400 with `Connection: close`.
                    return Ok(LineRead::Malformed("line too long".into()));
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Strip a trailing `\r` (the CR of a CRLF terminator).
fn chomp_cr(mut buf: Vec<u8>) -> Vec<u8> {
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    buf
}

/// The reason phrase for the status codes the protocol uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write a complete response. The body is sent verbatim with an exact
/// `Content-Length`, so JSON-lines bodies keep their trailing newline.
pub fn write_response(w: &mut impl Write, status: u16, body: &[u8], close: bool) -> io::Result<()> {
    let conn = if close { "close" } else { "keep-alive" };
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        reason(status),
        body.len(),
        conn
    )?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> ReadOutcome {
        read_request(&mut BufReader::new(bytes)).unwrap()
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /parse HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world";
        match parse(raw) {
            ReadOutcome::Request(r) => {
                assert_eq!(r.method, "POST");
                assert_eq!(r.path, "/parse");
                assert_eq!(r.header("host"), Some("x"));
                assert_eq!(r.body_str(), Some("hello world"));
                assert!(!r.wants_close());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_get_without_body_and_bare_lf() {
        match parse(b"GET /healthz HTTP/1.1\nConnection: Close\n\n") {
            ReadOutcome::Request(r) => {
                assert_eq!(r.method, "GET");
                assert!(r.body.is_empty());
                assert!(r.wants_close());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn two_requests_on_one_connection() {
        let raw: Vec<u8> = [
            &b"POST /parse HTTP/1.1\r\nContent-Length: 2\r\n\r\nab"[..],
            &b"GET /metrics HTTP/1.1\r\n\r\n"[..],
        ]
        .concat();
        let mut reader = BufReader::new(&raw[..]);
        match read_request(&mut reader).unwrap() {
            ReadOutcome::Request(r) => assert_eq!(r.body_str(), Some("ab")),
            other => panic!("{other:?}"),
        }
        match read_request(&mut reader).unwrap() {
            ReadOutcome::Request(r) => assert_eq!(r.path, "/metrics"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            read_request(&mut reader).unwrap(),
            ReadOutcome::Eof
        ));
    }

    #[test]
    fn malformed_inputs_are_reported_not_fatal() {
        for raw in [
            &b"NONSENSE\r\n\r\n"[..],
            &b"GET /x HTTP/2.0\r\n\r\n"[..],
            &b"GET noslash HTTP/1.1\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..],
        ] {
            assert!(
                matches!(parse(raw), ReadOutcome::Malformed(_)),
                "{:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn oversized_body_is_rejected() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(raw.as_bytes()), ReadOutcome::Malformed(_)));
    }

    #[test]
    fn response_bytes_are_exact() {
        let mut out = Vec::new();
        write_response(&mut out, 200, b"{\"ok\":true}\n", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 12\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}\n"), "{text}");

        let mut out = Vec::new();
        write_response(&mut out, 503, b"x", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("503 Service Unavailable"), "{text}");
        assert!(text.contains("Connection: close"), "{text}");
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        assert!(read_request(&mut BufReader::new(&raw[..])).is_err());
    }

    #[test]
    fn overlong_and_non_utf8_lines_earn_a_400_not_an_error() {
        let mut raw = vec![b'A'; MAX_LINE_BYTES + 10];
        raw.extend_from_slice(b" /x HTTP/1.1\r\n\r\n");
        assert!(matches!(parse(&raw), ReadOutcome::Malformed(m) if m == "line too long"));

        let raw = b"GET /\xff\xfe HTTP/1.1\r\n\r\n";
        assert!(matches!(parse(&raw[..]), ReadOutcome::Malformed(m) if m == "non-utf8 line"));

        // The same two problems inside a *header* line, after a clean
        // request line.
        let mut raw = b"GET /x HTTP/1.1\r\nX-Big: ".to_vec();
        raw.extend(std::iter::repeat_n(b'y', MAX_LINE_BYTES + 10));
        raw.extend_from_slice(b"\r\n\r\n");
        assert!(matches!(parse(&raw), ReadOutcome::Malformed(_)));
        assert!(matches!(
            parse(&b"GET /x HTTP/1.1\r\nX-Bin: \xff\xff\r\n\r\n"[..]),
            ReadOutcome::Malformed(_)
        ));
    }

    mod properties {
        use super::super::*;
        use std::io::BufReader;
        use ucfg_support::prop::Gen;
        use ucfg_support::{prop_assert, property};

        /// A plausible request serialised to bytes, for prefix mangling.
        fn well_formed(g: &mut Gen) -> Vec<u8> {
            let body_len = g.len_in(0..64);
            let body: Vec<u8> = (0..body_len).map(|_| g.int_in(0u8..=255)).collect();
            let path = g.string_of(&['a', 'b', '/', '?', '='], 1..=12);
            let mut raw =
                format!("POST /{path} HTTP/1.1\r\nHost: x\r\nContent-Length: {body_len}\r\n\r\n")
                    .into_bytes();
            raw.extend_from_slice(&body);
            raw
        }

        property! {
            cases = 256;
            // Truncating a valid request anywhere must yield Eof, a 400,
            // a complete parse, or a clean `Err` — never a panic.
            fn truncated_prefixes_never_panic(
                raw in well_formed,
                cut in |g: &mut Gen| g.int_in(0usize..1 << 9),
            ) {
                let cut = cut.min(raw.len());
                let outcome = read_request(&mut BufReader::new(&raw[..cut]));
                if cut == raw.len() {
                    prop_assert!(
                        matches!(outcome, Ok(ReadOutcome::Request(_))),
                        "whole request must parse: {outcome:?}"
                    );
                }
            }
        }

        property! {
            cases = 256;
            // Arbitrary bytes — binary garbage, oversized runs with no
            // terminator, stray newlines — must never panic, and any
            // rejected input must carry a non-empty 400 message.
            fn random_bytes_never_panic(
                raw in |g: &mut Gen| {
                    let len = g.len_in(0..2048);
                    (0..len).map(|_| g.int_in(0u8..=255)).collect::<Vec<u8>>()
                },
            ) {
                if let Ok(ReadOutcome::Malformed(msg)) =
                    read_request(&mut BufReader::new(&raw[..]))
                {
                    prop_assert!(!msg.is_empty(), "400 needs a reason");
                }
            }
        }

        property! {
            cases = 64;
            // A run longer than MAX_LINE_BYTES with no newline is the
            // classic slowloris-ish probe: wire-level 400, not an `Err`
            // that silently drops the connection.
            fn oversized_first_line_is_malformed(
                extra in |g: &mut Gen| g.int_in(1usize..1 << 10),
                byte in |g: &mut Gen| *g.choice(&[b'A', b' ', b'/', 0xff]),
            ) {
                let raw = vec![byte; MAX_LINE_BYTES + extra];
                let outcome = read_request(&mut BufReader::new(&raw[..]));
                prop_assert!(
                    matches!(outcome, Ok(ReadOutcome::Malformed(ref m)) if m == "line too long"),
                    "{outcome:?}"
                );
            }
        }
    }
}
