//! A minimal HTTP/1.1 reader/writer over any `Read`/`Write` pair.
//!
//! Just enough of RFC 9112 for the JSON-lines protocol: request line,
//! headers, `Content-Length` bodies, keep-alive. No chunked transfer
//! coding, no multipart, no TLS.
//!
//! The core is the push-based [`Assembler`]: bytes go in via
//! [`Assembler::push`] in whatever fragments the transport delivers
//! (one epoll readiness burst, one `read` syscall, one byte), and
//! complete requests come out of [`Assembler::next`]. The blocking
//! [`read_request`] helper wraps an `Assembler` over a [`BufRead`] so
//! the synchronous client-side tests and the nonblocking server share
//! one parser.

use std::io::{self, BufRead, Write};

/// Default largest accepted request body (4 MiB). Grammars are text,
/// so this is already generous, and the bound keeps a hostile
/// `Content-Length` from allocating gigabytes. Overridable per server
/// via [`Limits`] / `--max-body-bytes`.
pub const MAX_BODY_BYTES: usize = 4 << 20;
/// Default largest accepted request line or header line.
pub const MAX_LINE_BYTES: usize = 8 << 10;
/// Default maximum number of headers per request.
pub const MAX_HEADERS: usize = 64;

/// Parser bounds, configurable per server instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Largest accepted request body in bytes (`--max-body-bytes`).
    pub max_body_bytes: usize,
    /// Largest accepted request line or header line in bytes.
    pub max_line_bytes: usize,
    /// Maximum number of headers per request.
    pub max_headers: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_body_bytes: MAX_BODY_BYTES,
            max_line_bytes: MAX_LINE_BYTES,
            max_headers: MAX_HEADERS,
        }
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, …, uppercased by the client already.
    pub method: String,
    /// The path, e.g. `/parse` (query strings are kept verbatim).
    pub path: String,
    /// Headers in arrival order, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The body (may be empty).
    pub body: Vec<u8>,
    /// The request came in as HTTP/1.0, whose default (RFC 9112
    /// Appendix C) is connection-close unless keep-alive is explicit.
    pub http10: bool,
}

impl Request {
    /// First header with this (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Should the connection close after this exchange? An explicit
    /// `Connection` header wins; absent one, HTTP/1.1 defaults to
    /// keep-alive and HTTP/1.0 to close.
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => true,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => false,
            _ => self.http10,
        }
    }

    /// The body as UTF-8, or `None` if it isn't.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// A protocol-level rejection: data the *peer* sent that we refuse to
/// parse. Maps to a wire status (400 or 413); I/O failures are a
/// separate `io::Error` channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Not HTTP, or over a structural bound — answer 400.
    Malformed(String),
    /// The declared body exceeds the configured cap — answer 413.
    TooLarge {
        /// The configured `max_body_bytes` the request exceeded.
        limit: usize,
    },
}

impl WireError {
    /// The HTTP status this rejection earns.
    pub fn status(&self) -> u16 {
        match self {
            WireError::Malformed(_) => 400,
            WireError::TooLarge { .. } => 413,
        }
    }

    /// Human-readable reason for the error body.
    pub fn message(&self) -> String {
        match self {
            WireError::Malformed(m) => m.clone(),
            WireError::TooLarge { limit } => {
                format!("body exceeds max_body_bytes={limit}")
            }
        }
    }
}

/// Where the assembler is inside the current request.
#[derive(Debug)]
enum Phase {
    /// Waiting for (or mid-way through) the request line.
    RequestLine,
    /// Request line parsed; accumulating header lines.
    Headers {
        method: String,
        path: String,
        http10: bool,
        headers: Vec<(String, String)>,
    },
    /// Headers done; `want` body bytes outstanding.
    Body {
        method: String,
        path: String,
        http10: bool,
        headers: Vec<(String, String)>,
        want: usize,
        got: Vec<u8>,
    },
    /// A [`WireError`] was reported; the connection must close.
    Failed,
}

/// Incremental HTTP/1.1 request parser.
///
/// Feed raw bytes with [`push`](Assembler::push) exactly as they
/// arrive off the wire; pull out zero or more complete requests with
/// [`next`](Assembler::next). Pipelined requests in a single `push`
/// are handled — each `next` call yields at most one. After an `Err`,
/// the assembler is poisoned (the stream is unrecoverable mid-parse)
/// and further `next` calls repeat the error.
#[derive(Debug)]
pub struct Assembler {
    limits: Limits,
    /// Unconsumed input; `pos` is the scan cursor (compacted lazily).
    buf: Vec<u8>,
    pos: usize,
    phase: Phase,
    error: Option<WireError>,
}

impl Assembler {
    /// A fresh assembler with the given bounds.
    pub fn new(limits: Limits) -> Assembler {
        Assembler {
            limits,
            buf: Vec::new(),
            pos: 0,
            phase: Phase::RequestLine,
            error: None,
        }
    }

    /// Append raw wire bytes. Accepts any fragmentation, including one
    /// byte at a time and several pipelined requests at once.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing so a long-lived keep-alive connection
        // doesn't accrete every request it ever carried.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// No request is in flight and no bytes are buffered — the
    /// connection is between requests (safe to idle-timeout softly).
    pub fn is_idle(&self) -> bool {
        matches!(self.phase, Phase::RequestLine) && self.pos >= self.buf.len()
    }

    /// Try to produce the next complete request from buffered bytes.
    ///
    /// `Ok(Some(_))` — one request, its bytes consumed. `Ok(None)` —
    /// need more input. `Err(_)` — the peer broke protocol; answer
    /// with [`WireError::status`] and close.
    ///
    /// Deliberately named like — but distinct from — `Iterator::next`:
    /// this is a fallible pull with a tri-state result, not an iterator.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Request>, WireError> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        match self.advance() {
            Ok(req) => Ok(req),
            Err(e) => {
                self.phase = Phase::Failed;
                self.error = Some(e.clone());
                Err(e)
            }
        }
    }

    fn advance(&mut self) -> Result<Option<Request>, WireError> {
        loop {
            match &mut self.phase {
                Phase::Failed => unreachable!("poisoned assembler re-entered"),
                Phase::RequestLine => {
                    let line = match self.take_line()? {
                        Some(l) => l,
                        None => return Ok(None),
                    };
                    if line.is_empty() {
                        // Tolerate stray blank lines between requests
                        // (RFC 9112 §2.2 robustness).
                        continue;
                    }
                    let (method, path, http10) = parse_request_line(&line)?;
                    self.phase = Phase::Headers {
                        method,
                        path,
                        http10,
                        headers: Vec::new(),
                    };
                }
                Phase::Headers { .. } => {
                    let line = match self.take_line()? {
                        Some(l) => l,
                        None => return Ok(None),
                    };
                    let Phase::Headers {
                        method,
                        path,
                        http10,
                        headers,
                    } = std::mem::replace(&mut self.phase, Phase::RequestLine)
                    else {
                        unreachable!()
                    };
                    if line.is_empty() {
                        // End of head: validate framing headers now so a
                        // hostile Content-Length never allocates.
                        let want = body_len(&headers, &self.limits)?;
                        if want == 0 {
                            return Ok(Some(Request {
                                method,
                                path,
                                headers,
                                body: Vec::new(),
                                http10,
                            }));
                        }
                        self.phase = Phase::Body {
                            method,
                            path,
                            http10,
                            headers,
                            want,
                            got: Vec::with_capacity(want.min(64 << 10)),
                        };
                        continue;
                    }
                    let mut headers = headers;
                    if headers.len() >= self.limits.max_headers {
                        return Err(WireError::Malformed("too many headers".into()));
                    }
                    match line.split_once(':') {
                        Some((name, value)) => headers
                            .push((name.trim().to_ascii_lowercase(), value.trim().to_string())),
                        None => return Err(WireError::Malformed(format!("bad header {line:?}"))),
                    }
                    self.phase = Phase::Headers {
                        method,
                        path,
                        http10,
                        headers,
                    };
                }
                Phase::Body { want, got, .. } => {
                    let avail = self.buf.len() - self.pos;
                    let take = avail.min(*want - got.len());
                    got.extend_from_slice(&self.buf[self.pos..self.pos + take]);
                    self.pos += take;
                    if got.len() < *want {
                        return Ok(None);
                    }
                    let Phase::Body {
                        method,
                        path,
                        http10,
                        headers,
                        got,
                        ..
                    } = std::mem::replace(&mut self.phase, Phase::RequestLine)
                    else {
                        unreachable!()
                    };
                    return Ok(Some(Request {
                        method,
                        path,
                        headers,
                        body: got,
                        http10,
                    }));
                }
            }
        }
    }

    /// Extract one CRLF- (or bare-LF-) terminated line if complete;
    /// `None` if the terminator hasn't arrived. Enforces the line
    /// bound against the *unterminated* prefix too, so a slowloris
    /// stream with no newline is rejected as soon as it crosses the
    /// cap rather than buffered forever.
    fn take_line(&mut self) -> Result<Option<String>, WireError> {
        let hay = &self.buf[self.pos..];
        match hay.iter().position(|&b| b == b'\n') {
            Some(i) => {
                if i > self.limits.max_line_bytes {
                    return Err(WireError::Malformed("line too long".into()));
                }
                let mut end = i;
                if end > 0 && hay[end - 1] == b'\r' {
                    end -= 1;
                }
                let line = String::from_utf8(hay[..end].to_vec())
                    .map_err(|_| WireError::Malformed("non-utf8 line".into()))?;
                self.pos += i + 1;
                Ok(Some(line))
            }
            None if hay.len() > self.limits.max_line_bytes => {
                Err(WireError::Malformed("line too long".into()))
            }
            None => Ok(None),
        }
    }
}

/// Split and validate `METHOD SP PATH SP VERSION`. The third element
/// of the result is whether the version was HTTP/1.0.
fn parse_request_line(line: &str) -> Result<(String, String, bool), WireError> {
    let mut parts = line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(WireError::Malformed(format!("bad request line {line:?}")));
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(WireError::Malformed(format!("bad version {version:?}")));
    }
    Ok((method.to_string(), path.to_string(), version == "HTTP/1.0"))
}

/// Resolve the body length from the headers, rejecting unsupported
/// transfer codings, duplicate/conflicting `Content-Length` (request
/// smuggling vectors, RFC 9112 §6.3), and bodies over the cap.
fn body_len(headers: &[(String, String)], limits: &Limits) -> Result<usize, WireError> {
    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(WireError::Malformed(
            "chunked transfer coding not supported".into(),
        ));
    }
    let mut lens = headers.iter().filter(|(k, _)| k == "content-length");
    let first = match lens.next() {
        None => return Ok(0),
        Some((_, v)) => v,
    };
    if lens.next().is_some() {
        return Err(WireError::Malformed(
            "duplicate content-length headers".into(),
        ));
    }
    match first.parse::<usize>() {
        Ok(n) if n <= limits.max_body_bytes => Ok(n),
        Ok(_) => Err(WireError::TooLarge {
            limit: limits.max_body_bytes,
        }),
        Err(_) => Err(WireError::Malformed(format!(
            "bad content-length {first:?}"
        ))),
    }
}

/// Outcome of one read attempt on a keep-alive connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request was read.
    Request(Request),
    /// The peer closed the connection cleanly between requests.
    Eof,
    /// The read timed out before *any* byte arrived — the connection is
    /// idle, not broken; the caller decides whether to keep waiting
    /// (e.g. until shutdown is signalled).
    Idle,
    /// The peer sent something that is not HTTP or exceeded a
    /// structural bound; the caller should answer 400 and close.
    Malformed(String),
    /// The declared body exceeds the configured cap; answer 413.
    TooLarge {
        /// The configured `max_body_bytes` the request exceeded.
        limit: usize,
    },
}

/// Read one request with default [`Limits`]. Timeouts that strike
/// *before* the first byte surface as [`ReadOutcome::Idle`];
/// mid-request timeouts and any other I/O error propagate as `Err`
/// (the connection is unusable).
pub fn read_request(reader: &mut impl BufRead) -> io::Result<ReadOutcome> {
    // Peek for the first byte so an idle keep-alive connection can be
    // distinguished from a broken one.
    match reader.fill_buf() {
        Ok([]) => return Ok(ReadOutcome::Eof),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            return Ok(ReadOutcome::Idle)
        }
        Err(e) => return Err(e),
    }

    // Feed the assembler one byte at a time so a pipelined second
    // request stays in the BufRead for the next call — the assembler
    // never sees (and so never buffers) bytes past the request it
    // returns.
    let mut asm = Assembler::new(Limits::default());
    loop {
        match asm.next() {
            Ok(Some(req)) => return Ok(ReadOutcome::Request(req)),
            Ok(None) => {}
            Err(WireError::Malformed(m)) => return Ok(ReadOutcome::Malformed(m)),
            Err(WireError::TooLarge { limit }) => return Ok(ReadOutcome::TooLarge { limit }),
        }
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => {
                return if asm.is_idle() {
                    Ok(ReadOutcome::Eof)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "eof mid-request",
                    ))
                }
            }
            _ => asm.push(&byte),
        }
    }
}

/// The reason phrase for the status codes the protocol uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Serialise a complete response to bytes (for the nonblocking write
/// path, which needs the frame up front to track partial writes). The
/// body is included verbatim with an exact `Content-Length`, so
/// JSON-lines bodies keep their trailing newline.
pub fn render_response(status: u16, body: &[u8], close: bool) -> Vec<u8> {
    let conn = if close { "close" } else { "keep-alive" };
    let mut out = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        reason(status),
        body.len(),
        conn
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// Write a complete response to a blocking stream.
pub fn write_response(w: &mut impl Write, status: u16, body: &[u8], close: bool) -> io::Result<()> {
    w.write_all(&render_response(status, body, close))?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> ReadOutcome {
        read_request(&mut BufReader::new(bytes)).unwrap()
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /parse HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world";
        match parse(raw) {
            ReadOutcome::Request(r) => {
                assert_eq!(r.method, "POST");
                assert_eq!(r.path, "/parse");
                assert_eq!(r.header("host"), Some("x"));
                assert_eq!(r.body_str(), Some("hello world"));
                assert!(!r.wants_close());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_get_without_body_and_bare_lf() {
        match parse(b"GET /healthz HTTP/1.1\nConnection: Close\n\n") {
            ReadOutcome::Request(r) => {
                assert_eq!(r.method, "GET");
                assert!(r.body.is_empty());
                assert!(r.wants_close());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn http10_defaults_to_close_unless_keep_alive() {
        match parse(b"GET /healthz HTTP/1.0\r\n\r\n") {
            ReadOutcome::Request(r) => {
                assert!(r.http10);
                assert!(r.wants_close(), "bare HTTP/1.0 closes by default");
            }
            other => panic!("{other:?}"),
        }
        match parse(b"GET /healthz HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n") {
            ReadOutcome::Request(r) => {
                assert!(!r.wants_close(), "explicit keep-alive wins");
            }
            other => panic!("{other:?}"),
        }
        match parse(b"GET /healthz HTTP/1.1\r\n\r\n") {
            ReadOutcome::Request(r) => {
                assert!(!r.http10);
                assert!(!r.wants_close(), "HTTP/1.1 keeps alive by default");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn two_requests_on_one_connection() {
        let raw: Vec<u8> = [
            &b"POST /parse HTTP/1.1\r\nContent-Length: 2\r\n\r\nab"[..],
            &b"GET /metrics HTTP/1.1\r\n\r\n"[..],
        ]
        .concat();
        let mut reader = BufReader::new(&raw[..]);
        match read_request(&mut reader).unwrap() {
            ReadOutcome::Request(r) => assert_eq!(r.body_str(), Some("ab")),
            other => panic!("{other:?}"),
        }
        match read_request(&mut reader).unwrap() {
            ReadOutcome::Request(r) => assert_eq!(r.path, "/metrics"),
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            read_request(&mut reader).unwrap(),
            ReadOutcome::Eof
        ));
    }

    #[test]
    fn malformed_inputs_are_reported_not_fatal() {
        for raw in [
            &b"NONSENSE\r\n\r\n"[..],
            &b"GET /x HTTP/2.0\r\n\r\n"[..],
            &b"GET noslash HTTP/1.1\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..],
        ] {
            assert!(
                matches!(parse(raw), ReadOutcome::Malformed(_)),
                "{:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn oversized_body_earns_413_not_an_allocation() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse(raw.as_bytes()),
            ReadOutcome::TooLarge {
                limit: MAX_BODY_BYTES
            }
        ));

        // A hostile multi-gigabyte declaration must be rejected at
        // header time — the assembler never allocates for the body.
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n";
        let mut asm = Assembler::new(Limits::default());
        asm.push(raw);
        assert!(matches!(asm.next(), Err(WireError::TooLarge { .. })));
    }

    #[test]
    fn duplicate_and_conflicting_content_lengths_are_rejected() {
        for raw in [
            &b"POST /x HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 8\r\n\r\nabc"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc"[..],
        ] {
            let mut asm = Assembler::new(Limits::default());
            asm.push(raw);
            assert!(
                matches!(asm.next(), Err(WireError::Malformed(ref m)) if m.contains("content-length")),
                "{:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn assembler_handles_every_byte_split() {
        let raw = b"POST /parse HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        for cut in 0..raw.len() {
            let mut asm = Assembler::new(Limits::default());
            asm.push(&raw[..cut]);
            // At most one incomplete parse before the rest arrives.
            assert!(asm.next().unwrap().is_none(), "cut={cut}");
            asm.push(&raw[cut..]);
            let req = asm.next().unwrap().expect("complete after rest");
            assert_eq!(req.body_str(), Some("hello"));
            assert!(asm.is_idle());
        }
    }

    #[test]
    fn assembler_yields_pipelined_requests_one_by_one() {
        let raw: Vec<u8> = [
            &b"POST /parse HTTP/1.1\r\nContent-Length: 2\r\n\r\nab"[..],
            &b"GET /healthz HTTP/1.1\r\n\r\n"[..],
            &b"GET /metr"[..],
        ]
        .concat();
        let mut asm = Assembler::new(Limits::default());
        asm.push(&raw);
        assert_eq!(asm.next().unwrap().unwrap().path, "/parse");
        assert_eq!(asm.next().unwrap().unwrap().path, "/healthz");
        assert!(asm.next().unwrap().is_none());
        assert!(!asm.is_idle(), "partial third request is buffered");
        asm.push(b"ics HTTP/1.1\r\n\r\n");
        assert_eq!(asm.next().unwrap().unwrap().path, "/metrics");
        assert!(asm.is_idle());
    }

    #[test]
    fn assembler_is_poisoned_after_wire_error() {
        let mut asm = Assembler::new(Limits::default());
        asm.push(b"NONSENSE\r\n");
        assert!(asm.next().is_err());
        asm.push(b"GET /x HTTP/1.1\r\n\r\n");
        assert!(asm.next().is_err(), "errors are sticky");
    }

    #[test]
    fn unterminated_oversized_line_is_rejected_early() {
        // A slowloris stream that never sends a newline must be cut
        // off once it crosses the line cap, not buffered forever.
        let limits = Limits {
            max_line_bytes: 64,
            ..Limits::default()
        };
        let mut asm = Assembler::new(limits);
        asm.push(&[b'A'; 64]);
        assert!(asm.next().unwrap().is_none());
        asm.push(&[b'A'; 8]);
        assert!(matches!(
            asm.next(),
            Err(WireError::Malformed(ref m)) if m == "line too long"
        ));
    }

    #[test]
    fn response_bytes_are_exact() {
        let mut out = Vec::new();
        write_response(&mut out, 200, b"{\"ok\":true}\n", false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 12\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}\n"), "{text}");

        let mut out = Vec::new();
        write_response(&mut out, 503, b"x", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("503 Service Unavailable"), "{text}");
        assert!(text.contains("Connection: close"), "{text}");

        assert_eq!(reason(408), "Request Timeout");
        let rendered = render_response(408, b"late", true);
        let mut streamed = Vec::new();
        write_response(&mut streamed, 408, b"late", true).unwrap();
        assert_eq!(rendered, streamed);
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
        assert!(read_request(&mut BufReader::new(&raw[..])).is_err());
    }

    #[test]
    fn overlong_and_non_utf8_lines_earn_a_400_not_an_error() {
        let mut raw = vec![b'A'; MAX_LINE_BYTES + 10];
        raw.extend_from_slice(b" /x HTTP/1.1\r\n\r\n");
        assert!(matches!(parse(&raw), ReadOutcome::Malformed(m) if m == "line too long"));

        let raw = b"GET /\xff\xfe HTTP/1.1\r\n\r\n";
        assert!(matches!(parse(&raw[..]), ReadOutcome::Malformed(m) if m == "non-utf8 line"));

        // The same two problems inside a *header* line, after a clean
        // request line.
        let mut raw = b"GET /x HTTP/1.1\r\nX-Big: ".to_vec();
        raw.extend(std::iter::repeat_n(b'y', MAX_LINE_BYTES + 10));
        raw.extend_from_slice(b"\r\n\r\n");
        assert!(matches!(parse(&raw), ReadOutcome::Malformed(_)));
        assert!(matches!(
            parse(&b"GET /x HTTP/1.1\r\nX-Bin: \xff\xff\r\n\r\n"[..]),
            ReadOutcome::Malformed(_)
        ));
    }

    mod properties {
        use super::super::*;
        use std::io::BufReader;
        use ucfg_support::prop::Gen;
        use ucfg_support::{prop_assert, property};

        /// A plausible request serialised to bytes, for prefix mangling.
        fn well_formed(g: &mut Gen) -> Vec<u8> {
            let body_len = g.len_in(0..64);
            let body: Vec<u8> = (0..body_len).map(|_| g.int_in(0u8..=255)).collect();
            let path = g.string_of(&['a', 'b', '/', '?', '='], 1..=12);
            let mut raw =
                format!("POST /{path} HTTP/1.1\r\nHost: x\r\nContent-Length: {body_len}\r\n\r\n")
                    .into_bytes();
            raw.extend_from_slice(&body);
            raw
        }

        property! {
            cases = 256;
            // Truncating a valid request anywhere must yield Eof, a 400,
            // a complete parse, or a clean `Err` — never a panic.
            fn truncated_prefixes_never_panic(
                raw in well_formed,
                cut in |g: &mut Gen| g.int_in(0usize..1 << 9),
            ) {
                let cut = cut.min(raw.len());
                let outcome = read_request(&mut BufReader::new(&raw[..cut]));
                if cut == raw.len() {
                    prop_assert!(
                        matches!(outcome, Ok(ReadOutcome::Request(_))),
                        "whole request must parse: {outcome:?}"
                    );
                }
            }
        }

        property! {
            cases = 256;
            // Splitting a valid request into two pushes at any byte
            // boundary must reassemble to the identical request.
            fn any_split_reassembles_identically(
                raw in well_formed,
                cut in |g: &mut Gen| g.int_in(0usize..1 << 9),
            ) {
                let cut = cut.min(raw.len());
                let mut whole = Assembler::new(Limits::default());
                whole.push(&raw);
                let expect = whole.next().unwrap().expect("well-formed parses");

                let mut split = Assembler::new(Limits::default());
                split.push(&raw[..cut]);
                let early = split.next().unwrap();
                split.push(&raw[cut..]);
                let got = match early {
                    Some(r) => r,
                    None => split.next().unwrap().expect("complete after rest"),
                };
                prop_assert!(got == expect, "split at {cut} diverged");
            }
        }

        property! {
            cases = 256;
            // Arbitrary bytes — binary garbage, oversized runs with no
            // terminator, stray newlines — must never panic, and any
            // rejected input must carry a non-empty 400 message.
            fn random_bytes_never_panic(
                raw in |g: &mut Gen| {
                    let len = g.len_in(0..2048);
                    (0..len).map(|_| g.int_in(0u8..=255)).collect::<Vec<u8>>()
                },
            ) {
                if let Ok(ReadOutcome::Malformed(msg)) =
                    read_request(&mut BufReader::new(&raw[..]))
                {
                    prop_assert!(!msg.is_empty(), "400 needs a reason");
                }
            }
        }

        property! {
            cases = 64;
            // A run longer than MAX_LINE_BYTES with no newline is the
            // classic slowloris-ish probe: wire-level 400, not an `Err`
            // that silently drops the connection.
            fn oversized_first_line_is_malformed(
                extra in |g: &mut Gen| g.int_in(1usize..1 << 10),
                byte in |g: &mut Gen| *g.choice(&[b'A', b' ', b'/', 0xff]),
            ) {
                let raw = vec![byte; MAX_LINE_BYTES + extra];
                let outcome = read_request(&mut BufReader::new(&raw[..]));
                prop_assert!(
                    matches!(outcome, Ok(ReadOutcome::Malformed(ref m)) if m == "line too long"),
                    "{outcome:?}"
                );
            }
        }
    }
}
