//! The batching scheduler.
//!
//! Compute requests (`/parse`, `/cover/verify`, `/discrepancy`) are
//! enqueued as [`Job`]s (bounded; a full queue **load-sheds** instead
//! of blocking) and a scheduler thread drains the queue, groups the
//! drained parse jobs by grammar hash, resolves each group's compiled
//! artifact through the [`ArtifactCache`] once, and runs the group as
//! one batch on the deterministic `ucfg_support::par` pool — one
//! `build_with_index` chart per word, all sharing the group's
//! [`CykRuleIndex`](ucfg_grammar::cyk::CykRuleIndex). Rectangle jobs
//! run one at a time; their kernels spread across the same pool
//! internally.
//!
//! Replies travel through a [`ReplySink`] — a one-shot callback — so
//! the same scheduler serves both the blocking unit tests (sink backed
//! by an `mpsc` channel) and the nonblocking event loop (sink pushes a
//! completion and wakes the poller).
//!
//! Each request carries its enqueue time; requests that sat in the
//! queue past the configured deadline are answered with
//! `deadline_exceeded` instead of being run.
//!
//! Determinism: batch *results* are pure functions of the request, so
//! responses are byte-identical across thread counts, shard counts,
//! and batch shapes. Batch *shapes* (how many requests a drain
//! catches) depend on timing, so batch counters and sizes are volatile
//! instruments.

use crate::cache::{Artifact, ArtifactCache, GrammarArtifact, RectsArtifact};
use crate::json::Json;
use crate::protocol::{ApiError, RectRequest};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::time::{Duration, Instant};
use ucfg_grammar::Grammar;
use ucfg_support::{arena, obs, par};

/// A one-shot reply channel: the scheduler calls it exactly once with
/// the job's result. Backed by whatever the enqueuer needs — an
/// `mpsc::Sender` for blocking callers, a completion queue + poller
/// wake for the event loop.
pub struct ReplySink<T>(Box<dyn FnOnce(T) + Send>);

impl<T: Send + 'static> ReplySink<T> {
    /// Wrap an arbitrary one-shot callback.
    pub fn from_fn(f: impl FnOnce(T) + Send + 'static) -> ReplySink<T> {
        ReplySink(Box::new(f))
    }

    /// A sink/receiver pair for blocking callers: `send` forwards to
    /// the returned receiver.
    pub fn channel() -> (ReplySink<T>, mpsc::Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            ReplySink::from_fn(move |v| {
                let _ = tx.send(v);
            }),
            rx,
        )
    }

    /// Deliver the result, consuming the sink.
    pub fn send(self, value: T) {
        (self.0)(value)
    }
}

impl<T> std::fmt::Debug for ReplySink<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ReplySink")
    }
}

/// The outcome of one `/parse` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOutcome {
    /// Is the word in the language?
    pub member: bool,
    /// Exact number of parse trees, as a decimal string (may exceed
    /// `u64`).
    pub parse_count: String,
    /// Does the word have ≥ 2 parse trees? (Word-level ambiguity — the
    /// paper's uCFG condition is that *no* word has two trees.)
    pub ambiguous: bool,
    /// The grammar's content hash (hex), echoing the cache key.
    pub grammar_hash: u64,
    /// Did this request's batch group hit the artifact cache?
    pub cache_hit: bool,
    /// `Some(true)` when the Earley cross-check ran and agreed;
    /// a disagreement is answered as an internal error instead.
    pub cross_checked: Option<bool>,
}

/// One queued `/parse` request.
#[derive(Debug)]
pub struct ParseJob {
    /// The grammar's content hash — the batch group key.
    pub key: u64,
    /// The parsed grammar, used to compile the artifact on a miss.
    pub grammar: Grammar,
    /// The word to test.
    pub word: String,
    /// Run the Earley cross-check?
    pub check: bool,
    /// When the job entered the queue.
    pub enqueued: Instant,
    /// Where the answer goes.
    pub reply: ReplySink<Result<ParseOutcome, ApiError>>,
}

/// One queued `/cover/verify` or `/discrepancy` request. The reply is
/// the rendered single-line JSON body.
#[derive(Debug)]
pub struct RectJob {
    /// The bounds-checked request.
    pub req: RectRequest,
    /// `true` for `/discrepancy`, `false` for `/cover/verify`.
    pub discrepancy: bool,
    /// When the job entered the queue.
    pub enqueued: Instant,
    /// Where the rendered body goes.
    pub reply: ReplySink<Result<String, ApiError>>,
}

/// Anything the scheduler can run.
#[derive(Debug)]
pub enum Job {
    /// A `/parse` request (batched by grammar hash).
    Parse(ParseJob),
    /// A rectangle-family request (runs alone; its kernel parallelises
    /// internally).
    Rect(RectJob),
}

impl Job {
    /// Answer the job with an error without running it.
    fn reject(self, err: ApiError) {
        match self {
            Job::Parse(j) => j.reply.send(Err(err)),
            Job::Rect(j) => j.reply.send(Err(err)),
        }
    }

    fn enqueued(&self) -> Instant {
        match self {
            Job::Parse(j) => j.enqueued,
            Job::Rect(j) => j.enqueued,
        }
    }
}

/// The bounded queue + scheduler.
pub struct Scheduler {
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    depth: usize,
    deadline: Duration,
    stopping: AtomicBool,
}

impl Scheduler {
    /// A scheduler with the given queue bound and per-request deadline.
    pub fn new(depth: usize, deadline: Duration) -> Scheduler {
        Scheduler {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            depth: depth.max(1),
            deadline,
            stopping: AtomicBool::new(false),
        }
    }

    /// The queue bound.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Current queue length (for `/healthz`).
    pub fn queue_len(&self) -> usize {
        self.queue.lock().expect("queue poisoned").len()
    }

    /// Enqueue a job, or shed it if the queue is full or the scheduler
    /// is stopping. Never blocks.
    pub fn try_enqueue(&self, job: Job) -> Result<(), ApiError> {
        if self.stopping.load(Ordering::SeqCst) {
            return Err(ApiError::ShuttingDown);
        }
        {
            let mut q = self.queue.lock().expect("queue poisoned");
            if q.len() >= self.depth {
                obs::count!("serve.rejects.load_shed");
                return Err(ApiError::LoadShed { depth: self.depth });
            }
            q.push_back(job);
            obs::gauge_set!("serve.queue.depth", q.len() as i64);
        }
        self.cv.notify_one();
        Ok(())
    }

    /// Ask the drain loop to exit once the queue is empty.
    pub fn stop(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    /// The scheduler thread body: drain, group parse jobs by grammar
    /// hash, resolve artifacts through `cache`, run each group as one
    /// parallel batch, reply. Returns (after draining everything still
    /// queued) once [`Scheduler::stop`] has been called.
    pub fn run(&self, cache: &Mutex<ArtifactCache>) {
        loop {
            let batch: Vec<Job> = {
                let mut q = self.queue.lock().expect("queue poisoned");
                loop {
                    if !q.is_empty() {
                        break;
                    }
                    if self.stopping.load(Ordering::SeqCst) {
                        return;
                    }
                    let (guard, _) = self
                        .cv
                        .wait_timeout(q, Duration::from_millis(50))
                        .expect("queue poisoned");
                    q = guard;
                }
                let drained: Vec<Job> = q.drain(..).collect();
                obs::gauge_set!("serve.queue.depth", 0);
                drained
            };

            obs::vcount!("serve.batches");
            obs::record!("serve.batch.size", batch.len() as u64);

            // Reject everything that overstayed its queue deadline,
            // then split by kind.
            let now = Instant::now();
            let mut parses = Vec::new();
            let mut rects = Vec::new();
            for job in batch {
                let waited = now.duration_since(job.enqueued());
                if waited > self.deadline {
                    obs::count!("serve.rejects.deadline");
                    job.reject(ApiError::DeadlineExceeded {
                        waited_ms: waited.as_millis() as u64,
                    });
                    continue;
                }
                match job {
                    Job::Parse(p) => parses.push(p),
                    Job::Rect(r) => rects.push(r),
                }
            }

            for (key, jobs) in group_by_key(parses) {
                self.run_group(cache, key, jobs);
            }
            for job in rects {
                run_rect(cache, job);
            }
            // Batch boundary: the chart slabs and word-set buffers this
            // batch borrowed from the arena have all been recycled — mark
            // the epoch so `arena.peak_bytes` tracks per-batch high-water
            // and the pooled buffers serve the next drain allocation-free.
            arena::reset();
        }
    }

    fn run_group(&self, cache: &Mutex<ArtifactCache>, key: u64, jobs: Vec<ParseJob>) {
        // One artifact resolve per group: the whole point of batching.
        let resolved = cache
            .lock()
            .expect("cache poisoned")
            .get_or_insert_with(key, || {
                Ok(Artifact::Grammar(GrammarArtifact::compile(
                    jobs[0].grammar.clone(),
                )))
            });
        let (art, hit) = match resolved {
            Ok((Artifact::Grammar(g), hit)) => (g, hit),
            Ok((Artifact::Rects(_), _)) => {
                for j in jobs {
                    j.reply
                        .send(Err(ApiError::Internal("key collision in cache".into())));
                }
                return;
            }
            Err(e) => {
                for j in jobs {
                    j.reply.send(Err(e.clone()));
                }
                return;
            }
        };

        let _t = obs::span!("serve.batch.run");
        // The sinks aren't `Sync`, so the pool maps over (word, check)
        // pairs and the replies fan out afterwards.
        let inputs: Vec<(String, bool)> = jobs.iter().map(|j| (j.word.clone(), j.check)).collect();
        let outcomes = par::par_map(&inputs, |(word, check)| run_one(&art, word, *check, hit));
        for (job, outcome) in jobs.into_iter().zip(outcomes) {
            job.reply.send(outcome);
        }
    }
}

/// Group jobs by key, preserving first-appearance order within and
/// across groups.
fn group_by_key(jobs: Vec<ParseJob>) -> Vec<(u64, Vec<ParseJob>)> {
    let mut groups: Vec<(u64, Vec<ParseJob>)> = Vec::new();
    for job in jobs {
        match groups.iter_mut().find(|(k, _)| *k == job.key) {
            Some((_, g)) => g.push(job),
            None => groups.push((job.key, vec![job])),
        }
    }
    groups
}

/// Parse one word against a compiled artifact. Pure in (artifact,
/// word), so batch results are thread-count independent.
fn run_one(
    art: &GrammarArtifact,
    job_word: &str,
    check: bool,
    cache_hit: bool,
) -> Result<ParseOutcome, ApiError> {
    use ucfg_grammar::cyk::CykChart;

    let word = match art.cnf.encode(job_word) {
        Some(w) => w,
        None => {
            // A letter outside the alphabet: trivially not a member.
            return Ok(ParseOutcome {
                member: false,
                parse_count: "0".to_string(),
                ambiguous: false,
                grammar_hash: art.hash,
                cache_hit,
                cross_checked: None,
            });
        }
    };

    let chart = CykChart::build_with_index(&art.cnf, &art.index, &word);
    let member = chart.accepted();
    let count = chart.count_trees();
    let ambiguous = !count.is_zero() && count != ucfg_grammar::BigUint::one();

    let cross_checked = if check {
        let earley_member = art.earley().recognize_str(job_word);
        if earley_member != member {
            return Err(ApiError::Internal(format!(
                "differential mismatch on {:?}: CYK {} vs Earley {}",
                job_word, member, earley_member
            )));
        }
        Some(true)
    } else {
        None
    };

    Ok(ParseOutcome {
        member,
        parse_count: count.to_string(),
        ambiguous,
        grammar_hash: art.hash,
        cache_hit,
        cross_checked,
    })
}

/// Run one rectangle-family job: resolve the artifact, run the kernel
/// across the deterministic pool, reply with the rendered body. Pure
/// in the request, so the body is byte-identical across thread and
/// shard counts.
fn run_rect(cache: &Mutex<ArtifactCache>, job: RectJob) {
    let resolved = cache
        .lock()
        .expect("cache poisoned")
        .get_or_insert_with(job.req.cache_key(), || {
            RectsArtifact::build(job.req).map(Artifact::Rects)
        });
    let (artifact, hit) = match resolved {
        Ok(v) => v,
        Err(e) => {
            job.reply.send(Err(e));
            return;
        }
    };
    let Some(rects) = artifact.as_rects() else {
        job.reply
            .send(Err(ApiError::Internal("key collision in cache".into())));
        return;
    };

    let single_line = |v: Json| {
        let mut s = v.render();
        s.push('\n');
        s
    };
    let cache_tag = ("cache", Json::str(if hit { "hit" } else { "miss" }));
    let threads = par::thread_count();
    let body = if job.discrepancy {
        let _t = obs::span!("serve.discrepancy");
        let (discs, sums) =
            ucfg_core::cover::discrepancy_accounting_threads(job.req.n, &rects.rects, threads);
        single_line(Json::obj(vec![
            ("n", Json::Int(job.req.n as i64)),
            ("family", Json::str(job.req.family.name())),
            ("size", Json::Int(rects.rects.len() as i64)),
            (
                "discrepancies",
                Json::Arr(discs.into_iter().map(Json::Int).collect()),
            ),
            ("sums_to_gap", Json::Bool(sums)),
            cache_tag,
        ]))
    } else {
        let _t = obs::span!("serve.cover.verify");
        let report = ucfg_core::cover::verify_cover_threads(job.req.n, &rects.rects, threads);
        single_line(Json::obj(vec![
            ("n", Json::Int(job.req.n as i64)),
            ("family", Json::str(job.req.family.name())),
            ("size", Json::Int(report.size as i64)),
            ("covers_exactly", Json::Bool(report.covers_exactly)),
            ("disjoint", Json::Bool(report.disjoint)),
            ("all_balanced", Json::Bool(report.all_balanced)),
            ("max_overlap", Json::Int(report.max_overlap as i64)),
            cache_tag,
        ]))
    };
    job.reply.send(Ok(body));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn job(
        grammar_src: &str,
        word: &str,
        check: bool,
    ) -> (ParseJob, mpsc::Receiver<Result<ParseOutcome, ApiError>>) {
        let g = ucfg_grammar::text::parse_grammar(grammar_src).unwrap();
        let (tx, rx) = ReplySink::channel();
        (
            ParseJob {
                key: g.content_hash(),
                grammar: g,
                word: word.to_string(),
                check,
                enqueued: Instant::now(),
                reply: tx,
            },
            rx,
        )
    }

    fn drain_once(sched: &Scheduler, cache: &Mutex<ArtifactCache>) {
        // Run the loop to completion: stop() first so it exits after
        // draining what's queued.
        sched.stop();
        sched.run(cache);
    }

    #[test]
    fn batch_parses_and_counts() {
        let cache = Mutex::new(ArtifactCache::new(4));
        let sched = Scheduler::new(8, Duration::from_secs(5));
        // S → A A ; A → a | b : length-2 words, unambiguous.
        let src = "S -> A A\nA -> a | b";
        let (j1, r1) = job(src, "ab", true);
        let (j2, r2) = job(src, "abc", false);
        let (j3, r3) = job(src, "a", false);
        sched.try_enqueue(Job::Parse(j1)).unwrap();
        sched.try_enqueue(Job::Parse(j2)).unwrap();
        sched.try_enqueue(Job::Parse(j3)).unwrap();
        drain_once(&sched, &cache);

        let o1 = r1.recv().unwrap().unwrap();
        assert!(o1.member);
        assert_eq!(o1.parse_count, "1");
        assert!(!o1.ambiguous);
        assert_eq!(o1.cross_checked, Some(true));
        assert!(!o1.cache_hit, "first group resolve is a miss");

        // Foreign letter: clean non-membership.
        let o2 = r2.recv().unwrap().unwrap();
        assert!(!o2.member);
        assert_eq!(o2.parse_count, "0");

        let o3 = r3.recv().unwrap().unwrap();
        assert!(!o3.member);
    }

    #[test]
    fn ambiguity_is_detected_with_exact_counts() {
        let cache = Mutex::new(ArtifactCache::new(4));
        let sched = Scheduler::new(8, Duration::from_secs(5));
        // S → S S | a : Catalan-many trees.
        let (j, r) = job("S -> S S | a", "aaaa", false);
        sched.try_enqueue(Job::Parse(j)).unwrap();
        drain_once(&sched, &cache);
        let o = r.recv().unwrap().unwrap();
        assert!(o.member);
        assert!(o.ambiguous);
        assert_eq!(o.parse_count, "5", "C_3 = 5 trees for aaaa");
    }

    #[test]
    fn shared_grammar_hash_resolves_once_and_hits_after_warmup() {
        let cache = Mutex::new(ArtifactCache::new(4));
        let sched = Scheduler::new(8, Duration::from_secs(5));
        let (j1, r1) = job("S -> a S | b", "aab", false);
        sched.try_enqueue(Job::Parse(j1)).unwrap();
        drain_once(&sched, &cache);
        assert!(!r1.recv().unwrap().unwrap().cache_hit);

        // Second round, same grammar: the artifact is already cached.
        let sched2 = Scheduler::new(8, Duration::from_secs(5));
        let (j2, r2) = job("S -> a S | b", "b", false);
        let (j3, r3) = job("S -> a S | b", "ab", false);
        sched2.try_enqueue(Job::Parse(j2)).unwrap();
        sched2.try_enqueue(Job::Parse(j3)).unwrap();
        drain_once(&sched2, &cache);
        assert!(r2.recv().unwrap().unwrap().cache_hit);
        assert!(r3.recv().unwrap().unwrap().cache_hit);
        assert_eq!(cache.lock().unwrap().len(), 1);
    }

    #[test]
    fn rect_jobs_run_and_render_through_the_queue() {
        let cache = Mutex::new(ArtifactCache::new(4));
        let sched = Scheduler::new(8, Duration::from_secs(5));
        let req = RectRequest::from_json(&Json::parse(r#"{"n":4}"#).unwrap(), false).unwrap();
        let (tx, rx) = ReplySink::channel();
        sched
            .try_enqueue(Job::Rect(RectJob {
                req,
                discrepancy: false,
                enqueued: Instant::now(),
                reply: tx,
            }))
            .unwrap();
        drain_once(&sched, &cache);
        let body = rx.recv().unwrap().unwrap();
        let v = Json::parse(body.trim_end()).unwrap();
        assert_eq!(v.get("covers_exactly"), Some(&Json::Bool(true)));
        assert_eq!(v.get("cache").and_then(Json::as_str), Some("miss"));
        assert_eq!(cache.lock().unwrap().len(), 1);
    }

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        let sched = Scheduler::new(2, Duration::from_secs(5));
        let (j1, _r1) = job("S -> a", "a", false);
        let (j2, _r2) = job("S -> a", "a", false);
        let (j3, _r3) = job("S -> a", "a", false);
        sched.try_enqueue(Job::Parse(j1)).unwrap();
        sched.try_enqueue(Job::Parse(j2)).unwrap();
        let err = sched.try_enqueue(Job::Parse(j3)).unwrap_err();
        assert_eq!(err, ApiError::LoadShed { depth: 2 });
        assert_eq!(err.status(), 503);
        assert_eq!(sched.queue_len(), 2);
    }

    #[test]
    fn zero_deadline_rejects_queued_work() {
        let cache = Mutex::new(ArtifactCache::new(4));
        let sched = Scheduler::new(8, Duration::from_millis(0));
        let (mut j, r) = job("S -> a", "a", false);
        // Backdate the enqueue so the deadline has certainly passed.
        j.enqueued = Instant::now() - Duration::from_millis(50);
        sched.try_enqueue(Job::Parse(j)).unwrap();
        drain_once(&sched, &cache);
        let err = r.recv().unwrap().unwrap_err();
        assert!(matches!(err, ApiError::DeadlineExceeded { .. }));
        assert_eq!(err.status(), 504);
    }

    #[test]
    fn stopping_scheduler_sheds_new_work() {
        let sched = Scheduler::new(8, Duration::from_secs(5));
        sched.stop();
        let (j, _r) = job("S -> a", "a", false);
        assert_eq!(
            sched.try_enqueue(Job::Parse(j)).unwrap_err(),
            ApiError::ShuttingDown
        );
    }

    #[test]
    fn grouping_preserves_order() {
        let (a1, _r1) = job("S -> a", "a", false);
        let (b1, _r2) = job("S -> b", "b", false);
        let (a2, _r3) = job("S -> a", "a", false);
        let ka = a1.key;
        let kb = b1.key;
        assert_ne!(ka, kb);
        let groups = group_by_key(vec![a1, b1, a2]);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, ka);
        assert_eq!(groups[0].1.len(), 2);
        assert_eq!(groups[1].0, kb);
    }

    #[test]
    fn batch_results_match_across_thread_counts() {
        let src = "S -> a S b S | ()";
        let words = ["", "ab", "aabb", "abab", "ba", "aab"];
        let mut per_threads = Vec::new();
        for threads in [1, 4] {
            let cache = Mutex::new(ArtifactCache::new(4));
            let sched = Scheduler::new(16, Duration::from_secs(5));
            let mut rxs = Vec::new();
            for w in words {
                let (j, r) = job(src, w, true);
                sched.try_enqueue(Job::Parse(j)).unwrap();
                rxs.push(r);
            }
            // Pin the pool width through the par layer for this run.
            ucfg_support::par::set_thread_count(threads);
            drain_once(&sched, &cache);
            let outcomes: Vec<ParseOutcome> = rxs
                .into_iter()
                .map(|r| r.recv().unwrap().unwrap())
                .collect();
            per_threads.push(outcomes);
        }
        assert_eq!(per_threads[0], per_threads[1]);
    }
}
