//! The batching scheduler.
//!
//! Compute requests (`/parse`, `/cover/verify`, `/discrepancy`) are
//! enqueued as [`Job`]s (bounded; a full queue **load-sheds** instead
//! of blocking) and a scheduler thread drains the queue, groups the
//! drained parse jobs by grammar hash, resolves each group's compiled
//! artifact through the [`ArtifactCache`] once, and runs the group as
//! one batch on the deterministic `ucfg_support::par` pool — one
//! `build_with_index` chart per word, all sharing the group's
//! [`CykRuleIndex`](ucfg_grammar::cyk::CykRuleIndex). Rectangle jobs
//! run one at a time; their kernels spread across the same pool
//! internally.
//!
//! Replies travel through a [`ReplySink`] — a one-shot callback — so
//! the same scheduler serves both the blocking unit tests (sink backed
//! by an `mpsc` channel) and the nonblocking event loop (sink pushes a
//! completion and wakes the poller).
//!
//! Each request carries its enqueue time; requests that sat in the
//! queue past the configured deadline are answered with
//! `deadline_exceeded` instead of being run.
//!
//! Determinism: batch *results* are pure functions of the request, so
//! responses are byte-identical across thread counts, shard counts,
//! and batch shapes. Batch *shapes* (how many requests a drain
//! catches) depend on timing, so batch counters and sizes are volatile
//! instruments.

use crate::cache::{Artifact, ArtifactCache, GrammarArtifact, RectsArtifact};
use crate::json::Json;
use crate::protocol::{ApiError, RectRequest};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::time::{Duration, Instant};
use ucfg_grammar::Grammar;
use ucfg_stream::{FeedReport, StreamError, StreamSession};
use ucfg_support::{arena, obs, par};

/// Most live stream sessions one shard holds; opening past the cap is
/// shed (close a session first).
pub const MAX_SESSIONS_PER_SHARD: usize = 256;

/// A one-shot reply channel: the scheduler calls it exactly once with
/// the job's result. Backed by whatever the enqueuer needs — an
/// `mpsc::Sender` for blocking callers, a completion queue + poller
/// wake for the event loop.
pub struct ReplySink<T>(Box<dyn FnOnce(T) + Send>);

impl<T: Send + 'static> ReplySink<T> {
    /// Wrap an arbitrary one-shot callback.
    pub fn from_fn(f: impl FnOnce(T) + Send + 'static) -> ReplySink<T> {
        ReplySink(Box::new(f))
    }

    /// A sink/receiver pair for blocking callers: `send` forwards to
    /// the returned receiver.
    pub fn channel() -> (ReplySink<T>, mpsc::Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            ReplySink::from_fn(move |v| {
                let _ = tx.send(v);
            }),
            rx,
        )
    }

    /// Deliver the result, consuming the sink.
    pub fn send(self, value: T) {
        (self.0)(value)
    }
}

impl<T> std::fmt::Debug for ReplySink<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ReplySink")
    }
}

/// The outcome of one `/parse` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOutcome {
    /// Is the word in the language?
    pub member: bool,
    /// Exact number of parse trees, as a decimal string (may exceed
    /// `u64`).
    pub parse_count: String,
    /// Does the word have ≥ 2 parse trees? (Word-level ambiguity — the
    /// paper's uCFG condition is that *no* word has two trees.)
    pub ambiguous: bool,
    /// The grammar's content hash (hex), echoing the cache key.
    pub grammar_hash: u64,
    /// Did this request's batch group hit the artifact cache?
    pub cache_hit: bool,
    /// `Some(true)` when the Earley cross-check ran and agreed;
    /// a disagreement is answered as an internal error instead.
    pub cross_checked: Option<bool>,
}

/// One queued `/parse` request.
#[derive(Debug)]
pub struct ParseJob {
    /// The grammar's content hash — the batch group key.
    pub key: u64,
    /// The parsed grammar, used to compile the artifact on a miss.
    pub grammar: Grammar,
    /// The word to test.
    pub word: String,
    /// Run the Earley cross-check?
    pub check: bool,
    /// When the job entered the queue.
    pub enqueued: Instant,
    /// Where the answer goes.
    pub reply: ReplySink<Result<ParseOutcome, ApiError>>,
}

/// One queued `/cover/verify` or `/discrepancy` request. The reply is
/// the rendered single-line JSON body.
#[derive(Debug)]
pub struct RectJob {
    /// The bounds-checked request.
    pub req: RectRequest,
    /// `true` for `/discrepancy`, `false` for `/cover/verify`.
    pub discrepancy: bool,
    /// When the job entered the queue.
    pub enqueued: Instant,
    /// Where the rendered body goes.
    pub reply: ReplySink<Result<String, ApiError>>,
}

/// What a queued `/stream/*` request does to its session.
#[derive(Debug)]
pub enum StreamOp {
    /// `/stream/open` — create (or reset) the session.
    Open {
        /// The session's grammar (already built and bounds-checked).
        grammar: Grammar,
        /// Sliding-window capacity in tokens.
        window: usize,
        /// Optional regex for the product layer.
        regex: Option<String>,
        /// Client-chosen session tag.
        name: String,
    },
    /// `/stream/feed` with `"tokens"` — append characters.
    Feed {
        /// The characters to append.
        text: String,
    },
    /// `/stream/feed` with `"truncate"` — rewind to a position.
    Truncate {
        /// Absolute stream position to rewind to.
        to: u64,
    },
    /// `/stream/query` — the full window report.
    Query,
    /// `/stream/close` — drop the session.
    Close,
}

/// One queued `/stream/*` request. The reply is the rendered
/// single-line JSON body. Stream jobs run sequentially in drain order,
/// so a session's history is a deterministic function of the request
/// sequence.
#[derive(Debug)]
pub struct StreamJob {
    /// The deterministic session id (also the shard-routing key).
    pub session: u64,
    /// What to do.
    pub op: StreamOp,
    /// When the job entered the queue.
    pub enqueued: Instant,
    /// Where the rendered body goes.
    pub reply: ReplySink<Result<String, ApiError>>,
}

/// The live stream sessions owned by one shard, addressed by the
/// deterministic session id (rendezvous-routed, so an id always lands
/// on the shard holding its session).
pub struct SessionStore {
    sessions: HashMap<u64, StreamSession>,
    capacity: usize,
}

impl SessionStore {
    /// An empty store shedding opens past `capacity` sessions.
    pub fn new(capacity: usize) -> SessionStore {
        SessionStore {
            sessions: HashMap::new(),
            capacity: capacity.max(1),
        }
    }

    /// How many sessions are live.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// No sessions?
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }
}

/// Anything the scheduler can run.
#[derive(Debug)]
pub enum Job {
    /// A `/parse` request (batched by grammar hash).
    Parse(ParseJob),
    /// A rectangle-family request (runs alone; its kernel parallelises
    /// internally).
    Rect(RectJob),
    /// A `/stream/*` request (runs sequentially against the shard's
    /// session store).
    Stream(StreamJob),
}

impl Job {
    /// Answer the job with an error without running it.
    fn reject(self, err: ApiError) {
        match self {
            Job::Parse(j) => j.reply.send(Err(err)),
            Job::Rect(j) => j.reply.send(Err(err)),
            Job::Stream(j) => j.reply.send(Err(err)),
        }
    }

    fn enqueued(&self) -> Instant {
        match self {
            Job::Parse(j) => j.enqueued,
            Job::Rect(j) => j.enqueued,
            Job::Stream(j) => j.enqueued,
        }
    }
}

/// The bounded queue + scheduler.
pub struct Scheduler {
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    depth: usize,
    deadline: Duration,
    stopping: AtomicBool,
}

impl Scheduler {
    /// A scheduler with the given queue bound and per-request deadline.
    pub fn new(depth: usize, deadline: Duration) -> Scheduler {
        Scheduler {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            depth: depth.max(1),
            deadline,
            stopping: AtomicBool::new(false),
        }
    }

    /// The queue bound.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Current queue length (for `/healthz`).
    pub fn queue_len(&self) -> usize {
        self.queue.lock().expect("queue poisoned").len()
    }

    /// Enqueue a job, or shed it if the queue is full or the scheduler
    /// is stopping. Never blocks.
    pub fn try_enqueue(&self, job: Job) -> Result<(), ApiError> {
        if self.stopping.load(Ordering::SeqCst) {
            return Err(ApiError::ShuttingDown);
        }
        {
            let mut q = self.queue.lock().expect("queue poisoned");
            if q.len() >= self.depth {
                obs::count!("serve.rejects.load_shed");
                return Err(ApiError::LoadShed { depth: self.depth });
            }
            q.push_back(job);
            obs::gauge_set!("serve.queue.depth", q.len() as i64);
        }
        self.cv.notify_one();
        Ok(())
    }

    /// Ask the drain loop to exit once the queue is empty.
    pub fn stop(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        self.cv.notify_all();
    }

    /// The scheduler thread body: drain, group parse jobs by grammar
    /// hash, resolve artifacts through `cache`, run each group as one
    /// parallel batch, apply stream jobs to `sessions` in drain order,
    /// reply. Returns (after draining everything still queued) once
    /// [`Scheduler::stop`] has been called.
    pub fn run(&self, cache: &Mutex<ArtifactCache>, sessions: &Mutex<SessionStore>) {
        loop {
            let batch: Vec<Job> = {
                let mut q = self.queue.lock().expect("queue poisoned");
                loop {
                    if !q.is_empty() {
                        break;
                    }
                    if self.stopping.load(Ordering::SeqCst) {
                        return;
                    }
                    let (guard, _) = self
                        .cv
                        .wait_timeout(q, Duration::from_millis(50))
                        .expect("queue poisoned");
                    q = guard;
                }
                let drained: Vec<Job> = q.drain(..).collect();
                obs::gauge_set!("serve.queue.depth", 0);
                drained
            };

            obs::vcount!("serve.batches");
            obs::record!("serve.batch.size", batch.len() as u64);

            // Reject everything that overstayed its queue deadline,
            // then split by kind.
            let now = Instant::now();
            let mut parses = Vec::new();
            let mut rects = Vec::new();
            let mut streams = Vec::new();
            for job in batch {
                let waited = now.duration_since(job.enqueued());
                if waited > self.deadline {
                    obs::count!("serve.rejects.deadline");
                    job.reject(ApiError::DeadlineExceeded {
                        waited_ms: waited.as_millis() as u64,
                    });
                    continue;
                }
                match job {
                    Job::Parse(p) => parses.push(p),
                    Job::Rect(r) => rects.push(r),
                    Job::Stream(s) => streams.push(s),
                }
            }

            // Stream ops mutate session state, so they run strictly in
            // drain (= arrival) order; each is O(feed · window).
            for job in streams {
                run_stream(sessions, job);
            }
            for (key, jobs) in group_by_key(parses) {
                self.run_group(cache, key, jobs);
            }
            for job in rects {
                run_rect(cache, job);
            }
            // Batch boundary: the chart slabs and word-set buffers this
            // batch borrowed from the arena have all been recycled — mark
            // the epoch so `arena.peak_bytes` tracks per-batch high-water
            // and the pooled buffers serve the next drain allocation-free.
            arena::reset();
        }
    }

    fn run_group(&self, cache: &Mutex<ArtifactCache>, key: u64, jobs: Vec<ParseJob>) {
        // One artifact resolve per group: the whole point of batching.
        let resolved = cache
            .lock()
            .expect("cache poisoned")
            .get_or_insert_with(key, || {
                Ok(Artifact::Grammar(GrammarArtifact::compile(
                    jobs[0].grammar.clone(),
                )))
            });
        let (art, hit) = match resolved {
            Ok((Artifact::Grammar(g), hit)) => (g, hit),
            Ok((Artifact::Rects(_), _)) => {
                for j in jobs {
                    j.reply
                        .send(Err(ApiError::Internal("key collision in cache".into())));
                }
                return;
            }
            Err(e) => {
                for j in jobs {
                    j.reply.send(Err(e.clone()));
                }
                return;
            }
        };

        let _t = obs::span!("serve.batch.run");
        // The sinks aren't `Sync`, so the pool maps over (word, check)
        // pairs and the replies fan out afterwards.
        let inputs: Vec<(String, bool)> = jobs.iter().map(|j| (j.word.clone(), j.check)).collect();
        let outcomes = par::par_map(&inputs, |(word, check)| run_one(&art, word, *check, hit));
        for (job, outcome) in jobs.into_iter().zip(outcomes) {
            job.reply.send(outcome);
        }
    }
}

/// Group jobs by key, preserving first-appearance order within and
/// across groups.
fn group_by_key(jobs: Vec<ParseJob>) -> Vec<(u64, Vec<ParseJob>)> {
    let mut groups: Vec<(u64, Vec<ParseJob>)> = Vec::new();
    for job in jobs {
        match groups.iter_mut().find(|(k, _)| *k == job.key) {
            Some((_, g)) => g.push(job),
            None => groups.push((job.key, vec![job])),
        }
    }
    groups
}

/// Parse one word against a compiled artifact. Pure in (artifact,
/// word), so batch results are thread-count independent.
fn run_one(
    art: &GrammarArtifact,
    job_word: &str,
    check: bool,
    cache_hit: bool,
) -> Result<ParseOutcome, ApiError> {
    use ucfg_grammar::cyk::CykChart;

    let word = match art.cnf.encode(job_word) {
        Some(w) => w,
        None => {
            // A letter outside the alphabet: trivially not a member.
            return Ok(ParseOutcome {
                member: false,
                parse_count: "0".to_string(),
                ambiguous: false,
                grammar_hash: art.hash,
                cache_hit,
                cross_checked: None,
            });
        }
    };

    let chart = CykChart::build_with_index(&art.cnf, &art.index, &word);
    let member = chart.accepted();
    let count = chart.count_trees();
    let ambiguous = !count.is_zero() && count != ucfg_grammar::BigUint::one();

    let cross_checked = if check {
        let earley_member = art.earley().recognize_str(job_word);
        if earley_member != member {
            return Err(ApiError::Internal(format!(
                "differential mismatch on {:?}: CYK {} vs Earley {}",
                job_word, member, earley_member
            )));
        }
        Some(true)
    } else {
        None
    };

    Ok(ParseOutcome {
        member,
        parse_count: count.to_string(),
        ambiguous,
        grammar_hash: art.hash,
        cache_hit,
        cross_checked,
    })
}

/// Run one rectangle-family job: resolve the artifact, run the kernel
/// across the deterministic pool, reply with the rendered body. Pure
/// in the request, so the body is byte-identical across thread and
/// shard counts.
fn run_rect(cache: &Mutex<ArtifactCache>, job: RectJob) {
    let resolved = cache
        .lock()
        .expect("cache poisoned")
        .get_or_insert_with(job.req.cache_key(), || {
            RectsArtifact::build(job.req).map(Artifact::Rects)
        });
    let (artifact, hit) = match resolved {
        Ok(v) => v,
        Err(e) => {
            job.reply.send(Err(e));
            return;
        }
    };
    let Some(rects) = artifact.as_rects() else {
        job.reply
            .send(Err(ApiError::Internal("key collision in cache".into())));
        return;
    };

    let single_line = |v: Json| {
        let mut s = v.render();
        s.push('\n');
        s
    };
    let cache_tag = ("cache", Json::str(if hit { "hit" } else { "miss" }));
    let threads = par::thread_count();
    let body = if job.discrepancy {
        let _t = obs::span!("serve.discrepancy");
        let (discs, sums) =
            ucfg_core::cover::discrepancy_accounting_threads(job.req.n, &rects.rects, threads);
        single_line(Json::obj(vec![
            ("n", Json::Int(job.req.n as i64)),
            ("family", Json::str(job.req.family.name())),
            ("size", Json::Int(rects.rects.len() as i64)),
            (
                "discrepancies",
                Json::Arr(discs.into_iter().map(Json::Int).collect()),
            ),
            ("sums_to_gap", Json::Bool(sums)),
            cache_tag,
        ]))
    } else {
        let _t = obs::span!("serve.cover.verify");
        let report = ucfg_core::cover::verify_cover_threads(job.req.n, &rects.rects, threads);
        single_line(Json::obj(vec![
            ("n", Json::Int(job.req.n as i64)),
            ("family", Json::str(job.req.family.name())),
            ("size", Json::Int(report.size as i64)),
            ("covers_exactly", Json::Bool(report.covers_exactly)),
            ("disjoint", Json::Bool(report.disjoint)),
            ("all_balanced", Json::Bool(report.all_balanced)),
            ("max_overlap", Json::Int(report.max_overlap as i64)),
            cache_tag,
        ]))
    };
    job.reply.send(Ok(body));
}

fn stream_api_error(e: StreamError) -> ApiError {
    ApiError::BadRequest(e.to_string())
}

fn hex_id(id: u64) -> Json {
    Json::str(format!("{id:016x}"))
}

fn feed_body(id: u64, r: &FeedReport) -> String {
    let mut s = Json::obj(vec![
        ("session", hex_id(id)),
        ("fed", Json::Int(r.fed as i64)),
        ("evicted", Json::Int(r.evicted as i64)),
        ("total", Json::Int(r.total as i64)),
        ("base", Json::Int(r.base as i64)),
        ("window_len", Json::Int(r.window_len as i64)),
        ("member", Json::Bool(r.member)),
    ])
    .render();
    s.push('\n');
    s
}

/// Apply one `/stream/*` job to the shard's session store and render
/// the single-line reply. Every body is a pure function of the
/// session's request history, so stream responses are byte-identical
/// across thread and shard counts.
fn run_stream(sessions: &Mutex<SessionStore>, job: StreamJob) {
    let _t = obs::span!("serve.stream.op");
    let mut store = sessions.lock().expect("sessions poisoned");
    let id = job.session;
    let result: Result<String, ApiError> = match job.op {
        StreamOp::Open {
            grammar,
            window,
            regex,
            name,
        } => {
            if store.sessions.len() >= store.capacity && !store.sessions.contains_key(&id) {
                Err(ApiError::LoadShed {
                    depth: store.capacity,
                })
            } else {
                StreamSession::open(
                    std::sync::Arc::new(grammar),
                    window,
                    regex.as_deref(),
                    &name,
                )
                .map_err(stream_api_error)
                .map(|s| {
                    debug_assert_eq!(s.id(), id, "router and session disagree on the id");
                    let mut fields = vec![
                        ("session", hex_id(id)),
                        (
                            "grammar_hash",
                            Json::str(format!("{:016x}", s.grammar().content_hash())),
                        ),
                        ("window", Json::Int(s.capacity() as i64)),
                    ];
                    let q = s.query();
                    if let Some(p) = &q.product {
                        fields.push(("product_nonempty", Json::Bool(p.nonempty)));
                        fields.push(("dfa_states", Json::Int(p.dfa_states as i64)));
                    }
                    store.sessions.insert(id, s);
                    let mut b = Json::obj(fields).render();
                    b.push('\n');
                    b
                })
            }
        }
        StreamOp::Feed { text } => match store.sessions.get_mut(&id) {
            None => Err(ApiError::BadRequest(format!("no such session {id:016x}"))),
            Some(s) => s
                .feed(&text)
                .map_err(stream_api_error)
                .map(|r| feed_body(id, &r)),
        },
        StreamOp::Truncate { to } => match store.sessions.get_mut(&id) {
            None => Err(ApiError::BadRequest(format!("no such session {id:016x}"))),
            Some(s) => s
                .truncate(to)
                .map_err(stream_api_error)
                .map(|r| feed_body(id, &r)),
        },
        StreamOp::Query => match store.sessions.get(&id) {
            None => Err(ApiError::BadRequest(format!("no such session {id:016x}"))),
            Some(s) => {
                let q = s.query();
                let mut fields = vec![
                    ("session", hex_id(id)),
                    ("total", Json::Int(q.total as i64)),
                    ("base", Json::Int(q.base as i64)),
                    ("window", Json::str(q.window.clone())),
                    ("member", Json::Bool(q.member)),
                    ("suffix_matches", Json::Int(q.suffix_matches as i64)),
                    ("count", Json::str(q.count.clone())),
                ];
                if let Some(p) = &q.product {
                    fields.push((
                        "product",
                        Json::obj(vec![
                            ("nonempty", Json::Bool(p.nonempty)),
                            ("matches", Json::Int(p.matches as i64)),
                        ]),
                    ));
                }
                let mut b = Json::obj(fields).render();
                b.push('\n');
                Ok(b)
            }
        },
        StreamOp::Close => match store.sessions.remove(&id) {
            None => Err(ApiError::BadRequest(format!("no such session {id:016x}"))),
            Some(_) => {
                let mut b =
                    Json::obj(vec![("session", hex_id(id)), ("closed", Json::Bool(true))]).render();
                b.push('\n');
                Ok(b)
            }
        },
    };
    job.reply.send(result);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    fn job(
        grammar_src: &str,
        word: &str,
        check: bool,
    ) -> (ParseJob, mpsc::Receiver<Result<ParseOutcome, ApiError>>) {
        let g = ucfg_grammar::text::parse_grammar(grammar_src).unwrap();
        let (tx, rx) = ReplySink::channel();
        (
            ParseJob {
                key: g.content_hash(),
                grammar: g,
                word: word.to_string(),
                check,
                enqueued: Instant::now(),
                reply: tx,
            },
            rx,
        )
    }

    fn drain_once(sched: &Scheduler, cache: &Mutex<ArtifactCache>) {
        // Run the loop to completion: stop() first so it exits after
        // draining what's queued.
        sched.stop();
        sched.run(
            cache,
            &Mutex::new(SessionStore::new(MAX_SESSIONS_PER_SHARD)),
        );
    }

    fn stream_job(
        session: u64,
        op: StreamOp,
    ) -> (StreamJob, mpsc::Receiver<Result<String, ApiError>>) {
        let (tx, rx) = ReplySink::channel();
        (
            StreamJob {
                session,
                op,
                enqueued: Instant::now(),
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn stream_jobs_run_in_drain_order_against_the_store() {
        let cache = Mutex::new(ArtifactCache::new(4));
        let sessions = Mutex::new(SessionStore::new(MAX_SESSIONS_PER_SHARD));
        let g = ucfg_grammar::text::parse_grammar("S -> a S b S | ()").unwrap();
        let id = ucfg_stream::session_id(g.content_hash(), 8, None, "");

        let sched = Scheduler::new(16, Duration::from_secs(5));
        let (open, r_open) = stream_job(
            id,
            StreamOp::Open {
                grammar: g,
                window: 8,
                regex: None,
                name: String::new(),
            },
        );
        let (feed, r_feed) = stream_job(
            id,
            StreamOp::Feed {
                text: "aabb".into(),
            },
        );
        let (query, r_query) = stream_job(id, StreamOp::Query);
        let (close, r_close) = stream_job(id, StreamOp::Close);
        // All four in one drain: open → feed → query → close, in order.
        sched.try_enqueue(Job::Stream(open)).unwrap();
        sched.try_enqueue(Job::Stream(feed)).unwrap();
        sched.try_enqueue(Job::Stream(query)).unwrap();
        sched.try_enqueue(Job::Stream(close)).unwrap();
        sched.stop();
        sched.run(&cache, &sessions);

        let open_body = r_open.recv().unwrap().unwrap();
        assert!(open_body.contains(&format!("{id:016x}")), "{open_body}");
        let feed_body = r_feed.recv().unwrap().unwrap();
        let v = Json::parse(feed_body.trim_end()).unwrap();
        assert_eq!(v.get("fed"), Some(&Json::Int(4)));
        assert_eq!(v.get("member"), Some(&Json::Bool(true)));
        let query_body = r_query.recv().unwrap().unwrap();
        let v = Json::parse(query_body.trim_end()).unwrap();
        assert_eq!(v.get("window").and_then(Json::as_str), Some("aabb"));
        assert_eq!(v.get("count").and_then(Json::as_str), Some("1"));
        assert!(r_close.recv().unwrap().unwrap().contains("closed"));
        assert!(sessions.lock().unwrap().is_empty());
    }

    #[test]
    fn stream_ops_on_unknown_sessions_are_rejected() {
        let cache = Mutex::new(ArtifactCache::new(4));
        let sessions = Mutex::new(SessionStore::new(MAX_SESSIONS_PER_SHARD));
        let sched = Scheduler::new(16, Duration::from_secs(5));
        let (q, r) = stream_job(7, StreamOp::Query);
        sched.try_enqueue(Job::Stream(q)).unwrap();
        sched.stop();
        sched.run(&cache, &sessions);
        let err = r.recv().unwrap().unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(err.message().contains("no such session"));
    }

    #[test]
    fn session_store_sheds_past_capacity() {
        let cache = Mutex::new(ArtifactCache::new(4));
        let sessions = Mutex::new(SessionStore::new(1));
        let sched = Scheduler::new(16, Duration::from_secs(5));
        let g1 = ucfg_grammar::text::parse_grammar("S -> a").unwrap();
        let g2 = ucfg_grammar::text::parse_grammar("S -> b").unwrap();
        let id1 = ucfg_stream::session_id(g1.content_hash(), 4, None, "");
        let id2 = ucfg_stream::session_id(g2.content_hash(), 4, None, "");
        let open = |g: ucfg_grammar::Grammar, id: u64| {
            stream_job(
                id,
                StreamOp::Open {
                    grammar: g,
                    window: 4,
                    regex: None,
                    name: String::new(),
                },
            )
        };
        let (j1, r1) = open(g1.clone(), id1);
        let (j2, r2) = open(g2, id2);
        // Re-opening the session already held is allowed at capacity.
        let (j3, r3) = open(g1, id1);
        sched.try_enqueue(Job::Stream(j1)).unwrap();
        sched.try_enqueue(Job::Stream(j2)).unwrap();
        sched.try_enqueue(Job::Stream(j3)).unwrap();
        sched.stop();
        sched.run(&cache, &sessions);
        assert!(r1.recv().unwrap().is_ok());
        let err = r2.recv().unwrap().unwrap_err();
        assert_eq!(err, ApiError::LoadShed { depth: 1 });
        assert!(r3.recv().unwrap().is_ok());
        assert_eq!(sessions.lock().unwrap().len(), 1);
    }

    #[test]
    fn batch_parses_and_counts() {
        let cache = Mutex::new(ArtifactCache::new(4));
        let sched = Scheduler::new(8, Duration::from_secs(5));
        // S → A A ; A → a | b : length-2 words, unambiguous.
        let src = "S -> A A\nA -> a | b";
        let (j1, r1) = job(src, "ab", true);
        let (j2, r2) = job(src, "abc", false);
        let (j3, r3) = job(src, "a", false);
        sched.try_enqueue(Job::Parse(j1)).unwrap();
        sched.try_enqueue(Job::Parse(j2)).unwrap();
        sched.try_enqueue(Job::Parse(j3)).unwrap();
        drain_once(&sched, &cache);

        let o1 = r1.recv().unwrap().unwrap();
        assert!(o1.member);
        assert_eq!(o1.parse_count, "1");
        assert!(!o1.ambiguous);
        assert_eq!(o1.cross_checked, Some(true));
        assert!(!o1.cache_hit, "first group resolve is a miss");

        // Foreign letter: clean non-membership.
        let o2 = r2.recv().unwrap().unwrap();
        assert!(!o2.member);
        assert_eq!(o2.parse_count, "0");

        let o3 = r3.recv().unwrap().unwrap();
        assert!(!o3.member);
    }

    #[test]
    fn ambiguity_is_detected_with_exact_counts() {
        let cache = Mutex::new(ArtifactCache::new(4));
        let sched = Scheduler::new(8, Duration::from_secs(5));
        // S → S S | a : Catalan-many trees.
        let (j, r) = job("S -> S S | a", "aaaa", false);
        sched.try_enqueue(Job::Parse(j)).unwrap();
        drain_once(&sched, &cache);
        let o = r.recv().unwrap().unwrap();
        assert!(o.member);
        assert!(o.ambiguous);
        assert_eq!(o.parse_count, "5", "C_3 = 5 trees for aaaa");
    }

    #[test]
    fn shared_grammar_hash_resolves_once_and_hits_after_warmup() {
        let cache = Mutex::new(ArtifactCache::new(4));
        let sched = Scheduler::new(8, Duration::from_secs(5));
        let (j1, r1) = job("S -> a S | b", "aab", false);
        sched.try_enqueue(Job::Parse(j1)).unwrap();
        drain_once(&sched, &cache);
        assert!(!r1.recv().unwrap().unwrap().cache_hit);

        // Second round, same grammar: the artifact is already cached.
        let sched2 = Scheduler::new(8, Duration::from_secs(5));
        let (j2, r2) = job("S -> a S | b", "b", false);
        let (j3, r3) = job("S -> a S | b", "ab", false);
        sched2.try_enqueue(Job::Parse(j2)).unwrap();
        sched2.try_enqueue(Job::Parse(j3)).unwrap();
        drain_once(&sched2, &cache);
        assert!(r2.recv().unwrap().unwrap().cache_hit);
        assert!(r3.recv().unwrap().unwrap().cache_hit);
        assert_eq!(cache.lock().unwrap().len(), 1);
    }

    #[test]
    fn rect_jobs_run_and_render_through_the_queue() {
        let cache = Mutex::new(ArtifactCache::new(4));
        let sched = Scheduler::new(8, Duration::from_secs(5));
        let req = RectRequest::from_json(&Json::parse(r#"{"n":4}"#).unwrap(), false).unwrap();
        let (tx, rx) = ReplySink::channel();
        sched
            .try_enqueue(Job::Rect(RectJob {
                req,
                discrepancy: false,
                enqueued: Instant::now(),
                reply: tx,
            }))
            .unwrap();
        drain_once(&sched, &cache);
        let body = rx.recv().unwrap().unwrap();
        let v = Json::parse(body.trim_end()).unwrap();
        assert_eq!(v.get("covers_exactly"), Some(&Json::Bool(true)));
        assert_eq!(v.get("cache").and_then(Json::as_str), Some("miss"));
        assert_eq!(cache.lock().unwrap().len(), 1);
    }

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        let sched = Scheduler::new(2, Duration::from_secs(5));
        let (j1, _r1) = job("S -> a", "a", false);
        let (j2, _r2) = job("S -> a", "a", false);
        let (j3, _r3) = job("S -> a", "a", false);
        sched.try_enqueue(Job::Parse(j1)).unwrap();
        sched.try_enqueue(Job::Parse(j2)).unwrap();
        let err = sched.try_enqueue(Job::Parse(j3)).unwrap_err();
        assert_eq!(err, ApiError::LoadShed { depth: 2 });
        assert_eq!(err.status(), 503);
        assert_eq!(sched.queue_len(), 2);
    }

    #[test]
    fn zero_deadline_rejects_queued_work() {
        let cache = Mutex::new(ArtifactCache::new(4));
        let sched = Scheduler::new(8, Duration::from_millis(0));
        let (mut j, r) = job("S -> a", "a", false);
        // Backdate the enqueue so the deadline has certainly passed.
        j.enqueued = Instant::now() - Duration::from_millis(50);
        sched.try_enqueue(Job::Parse(j)).unwrap();
        drain_once(&sched, &cache);
        let err = r.recv().unwrap().unwrap_err();
        assert!(matches!(err, ApiError::DeadlineExceeded { .. }));
        assert_eq!(err.status(), 504);
    }

    #[test]
    fn stopping_scheduler_sheds_new_work() {
        let sched = Scheduler::new(8, Duration::from_secs(5));
        sched.stop();
        let (j, _r) = job("S -> a", "a", false);
        assert_eq!(
            sched.try_enqueue(Job::Parse(j)).unwrap_err(),
            ApiError::ShuttingDown
        );
    }

    #[test]
    fn grouping_preserves_order() {
        let (a1, _r1) = job("S -> a", "a", false);
        let (b1, _r2) = job("S -> b", "b", false);
        let (a2, _r3) = job("S -> a", "a", false);
        let ka = a1.key;
        let kb = b1.key;
        assert_ne!(ka, kb);
        let groups = group_by_key(vec![a1, b1, a2]);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, ka);
        assert_eq!(groups[0].1.len(), 2);
        assert_eq!(groups[1].0, kb);
    }

    #[test]
    fn batch_results_match_across_thread_counts() {
        let src = "S -> a S b S | ()";
        let words = ["", "ab", "aabb", "abab", "ba", "aab"];
        let mut per_threads = Vec::new();
        for threads in [1, 4] {
            let cache = Mutex::new(ArtifactCache::new(4));
            let sched = Scheduler::new(16, Duration::from_secs(5));
            let mut rxs = Vec::new();
            for w in words {
                let (j, r) = job(src, w, true);
                sched.try_enqueue(Job::Parse(j)).unwrap();
                rxs.push(r);
            }
            // Pin the pool width through the par layer for this run.
            ucfg_support::par::set_thread_count(threads);
            drain_once(&sched, &cache);
            let outcomes: Vec<ParseOutcome> = rxs
                .into_iter()
                .map(|r| r.recv().unwrap().unwrap())
                .collect();
            per_threads.push(outcomes);
        }
        assert_eq!(per_threads[0], per_threads[1]);
    }
}
