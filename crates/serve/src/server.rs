//! The TCP server: epoll event loop, routing, shards, and graceful
//! shutdown.
//!
//! Threading model: **one event-loop thread** owns every socket — the
//! listener and all connections are nonblocking and edge-triggered
//! through [`ucfg_support::evloop`] — plus one batch-scheduler thread
//! per shard ([`ShardSet`]). Each connection is a small state machine:
//! an incremental [`Assembler`] collects request bytes as they arrive,
//! complete requests are routed, compute requests are enqueued on the
//! shard owning their content hash, and the shard's reply lands in a
//! completion queue that wakes the poller (eventfd) to write the
//! response. At most one request per connection is in flight at a
//! time; pipelined bytes wait in the assembler.
//!
//! Robustness on the connection path:
//! - bodies over `--max-body-bytes` are answered `413` at header time
//!   (nothing is allocated for the declared length);
//! - a request that trickles in longer than `--request-timeout-ms`
//!   is answered `408` and the connection closed (slowloris defence);
//! - a connection with no forward progress for `--idle-timeout-ms` —
//!   silent since accept, or never reading the response it is owed —
//!   is closed outright, so silent peers cannot pin the connection
//!   budget and starve accepts;
//! - when live connections reach `--max-connections`, the listener is
//!   deregistered from the poller (**accept backpressure**): new
//!   connections queue in the kernel backlog instead of each burning a
//!   thread, and accepting resumes as soon as a slot frees.
//!
//! Shutdown — via SIGTERM/SIGINT, `POST /shutdown`, or a
//! [`ServerHandle`] — runs in strict order: stop accepting, close idle
//! connections, let in-flight requests complete (their responses are
//! sent `Connection: close`; the per-request deadline bounds the
//! stragglers), then stop and join the shard schedulers once no
//! producer remains. That ordering is what makes "drain in-flight
//! batches" a guarantee instead of a race.

use crate::batch::{Job, ParseJob, ParseOutcome, RectJob, ReplySink, StreamJob, StreamOp};
use crate::http::{render_response, Assembler, Limits, Request, WireError};
use crate::json::Json;
use crate::protocol::{
    session_from_json, ApiError, ParseRequest, RectRequest, StreamFeedRequest, StreamOpenRequest,
};
use crate::shard::ShardSet;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};
use ucfg_grammar::Grammar;
use ucfg_support::evloop::{self, Event, Interest, Poller, Waker};
use ucfg_support::{obs, par};

/// Set by the SIGTERM/SIGINT handlers; polled by every event loop.
/// Process-global because signal dispositions are process-global.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::SIGNAL_SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // An atomic store is async-signal-safe; everything else happens
        // on the event loop when it next polls the flag.
        SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
    }

    /// Route SIGTERM and SIGINT to the shutdown flag. Uses the libc
    /// `signal(2)` symbol std already links — the workspace stays
    /// dependency-free.
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        let handler: extern "C" fn(i32) = on_signal;
        unsafe {
            signal(SIGINT, handler as usize);
            signal(SIGTERM, handler as usize);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    /// No-op off Unix; `POST /shutdown` and [`super::ServerHandle`]
    /// still provide graceful shutdown.
    pub fn install() {}
}

/// Server configuration. `Default` gives the documented defaults; the
/// CLI overrides port/threads, tests override the bounds.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Interface to bind (default loopback).
    pub host: String,
    /// TCP port; 0 asks the OS for an ephemeral port.
    pub port: u16,
    /// Bounded batch-queue depth per shard; a full queue load-sheds.
    pub queue_depth: usize,
    /// Per-request queue deadline in milliseconds.
    pub deadline_ms: u64,
    /// Artifact-cache capacity (entries, total across shards).
    pub cache_capacity: usize,
    /// Maximum concurrent connections. At the budget the listener is
    /// paused (accept backpressure) instead of answering 503; excess
    /// connections wait in the kernel backlog.
    pub max_connections: usize,
    /// Worker shards: per-shard artifact cache + batch queue, keyed by
    /// content hash (`--shards`).
    pub shards: usize,
    /// Largest accepted request body in bytes (`--max-body-bytes`);
    /// larger declarations are answered 413.
    pub max_body_bytes: usize,
    /// Overall header+body deadline per request in milliseconds
    /// (`--request-timeout-ms`); slower clients are answered 408.
    pub request_timeout_ms: u64,
    /// How long a connection may sit with no forward progress — no
    /// bytes read, no bytes written — before it is closed
    /// (`--idle-timeout-ms`). This is what reclaims slots from clients
    /// that connect and never send a byte, so silent connections
    /// cannot pin the `max_connections` budget and starve accepts.
    pub idle_timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            host: "127.0.0.1".to_string(),
            port: 7878,
            queue_depth: 256,
            deadline_ms: 10_000,
            cache_capacity: 64,
            max_connections: 10_000,
            shards: 1,
            max_body_bytes: crate::http::MAX_BODY_BYTES,
            request_timeout_ms: 10_000,
            idle_timeout_ms: 60_000,
        }
    }
}

pub(crate) struct State {
    cfg: ServeConfig,
    shards: ShardSet,
    shutdown: AtomicBool,
    started: Instant,
    requests: AtomicU64,
    /// Live connections (for `/healthz`).
    connections: AtomicUsize,
    /// Socket `write(2)` calls the event loop has issued — the
    /// coalescing metric: queued responses on a connection are batched
    /// into one flush per event-loop wakeup, so pipelined requests cost
    /// one syscall, not one per response (for `/healthz`; volatile).
    flush_writes: AtomicU64,
    /// Replies from shard threads, drained by the event loop.
    completions: Mutex<Vec<Completion>>,
    /// Wakes the poller when a completion lands; set once by `run`.
    waker: OnceLock<Arc<Waker>>,
}

/// One finished compute job, addressed to connection `slot` as of
/// generation `gen` (stale generations mean the connection died and
/// was replaced; the completion is dropped).
struct Completion {
    slot: usize,
    gen: u64,
    status: u16,
    body: String,
}

impl State {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGNAL_SHUTDOWN.load(Ordering::SeqCst)
    }
}

/// Deliver a shard reply to the event loop and wake it.
fn push_completion(state: &State, slot: usize, gen: u64, status: u16, body: String) {
    state
        .completions
        .lock()
        .expect("completions poisoned")
        .push(Completion {
            slot,
            gen,
            status,
            body,
        });
    if let Some(w) = state.waker.get() {
        w.wake();
    }
}

/// A clonable handle for telling a running server to drain and exit
/// (used by tests and by in-process embedders like `serve_bench`).
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<State>,
}

impl ServerHandle {
    /// Begin graceful shutdown.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }
}

/// What [`Server::run`] reports after a graceful drain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Total HTTP requests answered (any status).
    pub requests: u64,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl Server {
    /// Bind `cfg.host:cfg.port` and prepare the state. Does not accept
    /// yet — call [`Server::run`].
    pub fn bind(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind((cfg.host.as_str(), cfg.port))?;
        listener.set_nonblocking(true)?;
        let state = Arc::new(State {
            shards: ShardSet::new(
                cfg.shards,
                cfg.cache_capacity,
                cfg.queue_depth,
                Duration::from_millis(cfg.deadline_ms),
            ),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            requests: AtomicU64::new(0),
            connections: AtomicUsize::new(0),
            flush_writes: AtomicU64::new(0),
            completions: Mutex::new(Vec::new()),
            waker: OnceLock::new(),
            cfg,
        });
        Ok(Server { listener, state })
    }

    /// Where the server actually listens (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown handle, safe to move to another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Install SIGTERM/SIGINT handlers that trigger graceful shutdown.
    /// Call once from the CLI; in-process embedders skip this and use
    /// [`Server::handle`].
    pub fn install_signal_handlers() {
        sig::install();
    }

    /// Serve until shutdown is requested, then drain and return.
    /// Requires epoll, i.e. Linux (the constructor fails cleanly
    /// elsewhere).
    pub fn run(self) -> io::Result<ServeSummary> {
        let state = Arc::clone(&self.state);

        // Best-effort: each connection is one fd; leave headroom for
        // the listener, poller, eventfd, and stdio.
        let _ = evloop::raise_nofile_limit(state.cfg.max_connections as u64 + 64);

        let shard_threads = state.shards.spawn()?;

        let poller = Poller::new()?;
        poller.add(
            self.listener.as_raw_fd(),
            TOKEN_LISTENER,
            Interest::READABLE,
        )?;
        let waker = Arc::new(Waker::new(&poller, TOKEN_WAKER)?);
        let _ = state.waker.set(Arc::clone(&waker));

        let mut evloop = EventLoop {
            state: Arc::clone(&state),
            poller,
            listener: self.listener,
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            live: 0,
            accept_registered: true,
            events: Vec::new(),
            dirty: Vec::new(),
        };
        let result = evloop.run();

        // No producer remains (all connections are closed), so the
        // shard queues drain to empty and the threads exit.
        state.shards.stop();
        for h in shard_threads {
            let _ = h.join();
        }
        result?;

        Ok(ServeSummary {
            requests: state.requests.load(Ordering::SeqCst),
        })
    }
}

/// Token for the listening socket.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Token for the completion-queue eventfd.
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    /// Incremental request parser.
    asm: Assembler,
    /// Pending response bytes (next write starts at `out_pos`).
    out: Vec<u8>,
    out_pos: usize,
    /// A compute job is in flight; don't pump further requests.
    awaiting_reply: bool,
    /// Close once `out` is fully flushed.
    close_after_write: bool,
    /// The in-flight request asked for `Connection: close`.
    pending_close: bool,
    /// Deadline for completing the currently-assembling request
    /// (slowloris defence); `None` while idle, awaiting a reply, or
    /// already marked to close.
    deadline: Option<Instant>,
    /// Last moment the connection made forward progress (accepted,
    /// bytes read, or bytes written). A connection stalled longer than
    /// `--idle-timeout-ms` — silent since accept, or never reading its
    /// final response — is closed outright.
    last_activity: Instant,
    /// Registered interest currently includes writable.
    want_write: bool,
    /// Queued response bytes await the end-of-wakeup flush (the slot is
    /// on the event loop's dirty list).
    flush_pending: bool,
    /// Slot generation, for matching completions.
    gen: u64,
}

/// The single-threaded epoll loop owning every socket.
struct EventLoop {
    state: Arc<State>,
    poller: Poller,
    listener: TcpListener,
    conns: Vec<Option<Conn>>,
    /// Per-slot generation counters (bumped on reuse).
    gens: Vec<u64>,
    free: Vec<usize>,
    live: usize,
    accept_registered: bool,
    events: Vec<Event>,
    /// Slots with responses queued this wakeup, flushed once at the end
    /// of the loop iteration so pipelined responses coalesce into one
    /// `write`.
    dirty: Vec<usize>,
}

impl EventLoop {
    fn run(&mut self) -> io::Result<()> {
        loop {
            if self.state.shutting_down() {
                self.pause_accept();
                self.close_idle_conns();
                if self.live == 0 {
                    return Ok(());
                }
            }

            let timeout = self.next_timeout();
            let mut events = std::mem::take(&mut self.events);
            events.clear();
            self.poller.wait(&mut events, Some(timeout))?;
            for &ev in events.iter() {
                match ev.token {
                    TOKEN_LISTENER => self.accept_sweep()?,
                    TOKEN_WAKER => {
                        if let Some(w) = self.state.waker.get() {
                            w.drain();
                        }
                    }
                    slot => self.on_conn_event(slot as usize, ev),
                }
            }
            self.events = events;

            self.deliver_completions();
            self.enforce_deadlines();
            self.flush_dirty();
            self.maybe_resume_accept()?;
        }
    }

    /// How long the next `epoll_wait` may block: bounded by the poll
    /// tick (shutdown flag, completion races) and the nearest
    /// per-request deadline.
    fn next_timeout(&self) -> Duration {
        let tick = Duration::from_millis(50);
        let now = Instant::now();
        self.conns
            .iter()
            .flatten()
            .filter_map(|c| c.deadline)
            .map(|d| d.saturating_duration_since(now))
            .min()
            .map_or(tick, |until| until.min(tick))
    }

    // ---- accepting --------------------------------------------------

    fn accept_sweep(&mut self) -> io::Result<()> {
        if !self.accept_registered {
            return Ok(());
        }
        loop {
            if self.live >= self.state.cfg.max_connections {
                // Budget reached: stop listening. The kernel backlog
                // holds new connections until a slot frees.
                self.pause_accept();
                return Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => self.register_conn(stream)?,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // The peer vanished between SYN and accept (ECONNABORTED
                // and friends): that connection is gone from the queue,
                // keep draining the rest.
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => {}
                // Resource errors (EMFILE/ENFILE/ENOBUFS…) leave the
                // connection *in* the backlog, so under edge-triggered
                // epoll simply returning would strand it until a fresh
                // SYN. Park the listener instead; `maybe_resume_accept`
                // re-arms it on the next tick — a level-style retry
                // without a busy loop.
                Err(_) => {
                    obs::vcount!("serve.accept.errors");
                    self.pause_accept();
                    return Ok(());
                }
            }
        }
    }

    fn register_conn(&mut self, stream: TcpStream) -> io::Result<()> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.gens.push(0);
            self.conns.len() - 1
        });
        self.gens[slot] += 1;
        self.poller
            .add(stream.as_raw_fd(), slot as u64, Interest::READABLE)?;
        self.conns[slot] = Some(Conn {
            stream,
            asm: Assembler::new(Limits {
                max_body_bytes: self.state.cfg.max_body_bytes,
                ..Limits::default()
            }),
            out: Vec::new(),
            out_pos: 0,
            awaiting_reply: false,
            close_after_write: false,
            pending_close: false,
            deadline: None,
            last_activity: Instant::now(),
            want_write: false,
            flush_pending: false,
            gen: self.gens[slot],
        });
        self.live += 1;
        self.state.connections.store(self.live, Ordering::SeqCst);
        obs::vcount!("serve.connections.accepted");
        Ok(())
    }

    fn pause_accept(&mut self) {
        if self.accept_registered {
            let _ = self.poller.remove(self.listener.as_raw_fd());
            self.accept_registered = false;
        }
    }

    fn maybe_resume_accept(&mut self) -> io::Result<()> {
        if !self.accept_registered
            && !self.state.shutting_down()
            && self.live < self.state.cfg.max_connections
        {
            self.poller.add(
                self.listener.as_raw_fd(),
                TOKEN_LISTENER,
                Interest::READABLE,
            )?;
            self.accept_registered = true;
            // Edge-triggered: connections that queued while paused
            // won't produce a fresh edge, so sweep the backlog now.
            self.accept_sweep()?;
        }
        Ok(())
    }

    // ---- connection I/O --------------------------------------------

    fn on_conn_event(&mut self, slot: usize, ev: Event) {
        if self.conns.get(slot).is_none_or(Option::is_none) {
            return; // stale event for a closed connection
        }
        if ev.error {
            self.close_conn(slot);
            return;
        }
        if ev.readable || ev.hangup {
            self.read_drain(slot);
        }
        if ev.writable && self.conns[slot].is_some() {
            self.flush(slot);
        }
    }

    /// Drain the socket until `WouldBlock` (edge-triggered contract),
    /// then pump any complete requests.
    fn read_drain(&mut self, slot: usize) {
        let mut eof = false;
        let mut buf = [0u8; 16 << 10];
        loop {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    conn.last_activity = Instant::now();
                    conn.asm.push(&buf[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    eof = true;
                    break;
                }
            }
        }
        self.pump_requests(slot);
        if eof {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            if conn.awaiting_reply || conn.out_pos < conn.out.len() {
                // A reply is still owed or buffered: deliver it (the
                // peer may have only shut down its write side), then
                // close. No more request bytes can arrive, so the
                // request deadline is moot.
                conn.close_after_write = true;
                conn.deadline = None;
            } else {
                self.close_conn(slot);
            }
        }
    }

    /// Run the assembler: dispatch complete requests until input runs
    /// out, a compute job goes in flight, or the connection errors.
    fn pump_requests(&mut self, slot: usize) {
        loop {
            let step = {
                let Some(conn) = self.conns[slot].as_mut() else {
                    return;
                };
                if conn.awaiting_reply || conn.close_after_write {
                    break;
                }
                conn.asm.next()
            };
            match step {
                Ok(None) => break,
                Ok(Some(req)) => {
                    let routed = route(&self.state, &req);
                    // Computed after routing so `POST /shutdown`'s own
                    // response already carries `Connection: close`.
                    let close = req.wants_close() || self.state.shutting_down();
                    match routed {
                        Routed::Ready(status, body) => {
                            self.queue_response(slot, status, &body, close)
                        }
                        Routed::Enqueue(spec) => {
                            let gen = {
                                let conn = self.conns[slot].as_mut().expect("checked above");
                                conn.awaiting_reply = true;
                                conn.pending_close = close;
                                conn.gen
                            };
                            if let Err(e) = enqueue_job(&self.state, spec, slot, gen) {
                                if let Some(conn) = self.conns[slot].as_mut() {
                                    conn.awaiting_reply = false;
                                }
                                self.queue_response(slot, e.status(), &e.body(), close);
                            }
                        }
                    }
                }
                Err(we) => {
                    let err = match we {
                        WireError::Malformed(m) => ApiError::BadRequest(m),
                        WireError::TooLarge { limit } => ApiError::PayloadTooLarge { limit },
                    };
                    self.queue_response(slot, err.status(), &err.body(), true);
                    break;
                }
            }
        }
        // Deadline bookkeeping: a partially-assembled request is on
        // the clock; an idle, reply-awaiting, or closing connection is
        // not.
        if let Some(conn) = self.conns[slot].as_mut() {
            if conn.awaiting_reply || conn.close_after_write || conn.asm.is_idle() {
                conn.deadline = None;
            } else if conn.deadline.is_none() {
                conn.deadline =
                    Some(Instant::now() + Duration::from_millis(self.state.cfg.request_timeout_ms));
            }
        }
    }

    /// Serialise a response onto the connection's write buffer and
    /// mark the slot dirty; the actual `write` happens once per event-
    /// loop wakeup in [`EventLoop::flush_dirty`], so pipelined replies
    /// coalesce into a single syscall.
    fn queue_response(&mut self, slot: usize, status: u16, body: &str, close: bool) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return; // slot already closed; nothing was sent, count nothing
        };
        self.state.requests.fetch_add(1, Ordering::SeqCst);
        let frame = render_response(status, body.as_bytes(), close);
        conn.out.extend_from_slice(&frame);
        conn.last_activity = Instant::now();
        if close {
            conn.close_after_write = true;
            // The request clock stops once the closing response is
            // queued — otherwise an unread response would re-trip the
            // deadline every tick.
            conn.deadline = None;
        }
        if !conn.flush_pending {
            conn.flush_pending = true;
            self.dirty.push(slot);
        }
    }

    /// Flush every slot that queued a response this wakeup. Runs once
    /// per loop iteration, after completions and deadlines, so a burst
    /// of pipelined responses leaves in one `write`.
    fn flush_dirty(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        let dirty = std::mem::take(&mut self.dirty);
        for slot in dirty {
            // A writable-edge flush (or a close) may already have
            // cleared the mark; stale entries are skipped.
            let pending = self
                .conns
                .get(slot)
                .is_some_and(|c| c.as_ref().is_some_and(|c| c.flush_pending));
            if pending {
                self.flush(slot);
            }
        }
    }

    fn flush(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        conn.flush_pending = false;
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    self.close_conn(slot);
                    return;
                }
                Ok(n) => {
                    self.state.flush_writes.fetch_add(1, Ordering::SeqCst);
                    obs::vcount!("serve.flush.writes");
                    conn.out_pos += n;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if !conn.want_write {
                        conn.want_write = true;
                        let _ = self.poller.modify(
                            conn.stream.as_raw_fd(),
                            slot as u64,
                            Interest::BOTH,
                        );
                    }
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close_conn(slot);
                    return;
                }
            }
        }
        conn.out.clear();
        conn.out_pos = 0;
        if conn.close_after_write {
            self.close_conn(slot);
            return;
        }
        if conn.want_write {
            conn.want_write = false;
            let _ = self
                .poller
                .modify(conn.stream.as_raw_fd(), slot as u64, Interest::READABLE);
        }
    }

    fn close_conn(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            let _ = self.poller.remove(conn.stream.as_raw_fd());
            drop(conn);
            self.free.push(slot);
            self.live -= 1;
            self.state.connections.store(self.live, Ordering::SeqCst);
        }
    }

    // ---- completions and deadlines ---------------------------------

    fn deliver_completions(&mut self) {
        let done: Vec<Completion> = {
            let mut guard = self.state.completions.lock().expect("completions poisoned");
            std::mem::take(&mut *guard)
        };
        for c in done {
            let matches = self.conns.get(c.slot).is_some_and(|s| {
                s.as_ref()
                    .is_some_and(|conn| conn.gen == c.gen && conn.awaiting_reply)
            });
            if !matches {
                continue; // connection died; the reply has no home
            }
            let close = {
                let conn = self.conns[c.slot].as_mut().expect("checked above");
                conn.awaiting_reply = false;
                conn.pending_close || self.state.shutting_down()
            };
            self.queue_response(c.slot, c.status, &c.body, close);
            // The reply may have unblocked pipelined requests.
            if self.conns[c.slot].is_some() {
                self.pump_requests(c.slot);
            }
        }
    }

    /// Answer 408 to connections whose in-progress request overstayed
    /// `--request-timeout-ms`, and close connections that have made no
    /// forward progress for `--idle-timeout-ms` (silent since accept,
    /// or never reading the response owed to them).
    fn enforce_deadlines(&mut self) {
        let now = Instant::now();
        let idle_after = Duration::from_millis(self.state.cfg.idle_timeout_ms);
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns[slot].as_ref() else {
                continue;
            };
            // Already answered and closing: the request clock is off
            // (queue_response cleared it); only the stall check below
            // can still reap the slot if the peer never reads.
            if !conn.close_after_write && conn.deadline.is_some_and(|d| now >= d) {
                obs::vcount!("serve.rejects.request_timeout");
                let err = ApiError::RequestTimeout {
                    waited_ms: self.state.cfg.request_timeout_ms,
                };
                // queue_response(close=true) clears the deadline, so
                // the 408 is framed exactly once per request.
                self.queue_response(slot, err.status(), &err.body(), true);
                continue;
            }
            // Stall reaper. Connections awaiting a shard reply are
            // exempt: the batch deadline bounds those, and the
            // completion restarts the clock.
            let stalled = !conn.awaiting_reply
                && now.saturating_duration_since(conn.last_activity) >= idle_after;
            if stalled {
                obs::vcount!("serve.rejects.idle_timeout");
                self.close_conn(slot);
            }
        }
    }

    /// During shutdown: close connections with nothing in flight.
    fn close_idle_conns(&mut self) {
        for slot in 0..self.conns.len() {
            let idle = self.conns[slot]
                .as_ref()
                .is_some_and(|c| !c.awaiting_reply && c.out_pos >= c.out.len() && c.asm.is_idle());
            if idle {
                self.close_conn(slot);
            }
        }
    }
}

/// Where a routed request goes next.
enum Routed {
    /// Answer immediately (status, body).
    Ready(u16, String),
    /// Hand to a shard's batch queue.
    Enqueue(JobSpec),
}

/// A compute request, validated and ready to enqueue.
enum JobSpec {
    /// `/parse`.
    Parse {
        key: u64,
        grammar: Grammar,
        word: String,
        check: bool,
    },
    /// `/cover/verify` or `/discrepancy`.
    Rect { req: RectRequest, discrepancy: bool },
    /// `/stream/open`, `/stream/feed`, `/stream/query`, `/stream/close`.
    /// Routed to the shard owning the deterministic session id.
    Stream { session: u64, op: StreamOp },
}

/// Dispatch one request. Infallible: protocol errors become their JSON
/// error bodies. Pure routing — no compute, no blocking.
fn route(state: &State, req: &Request) -> Routed {
    let result: Result<Routed, ApiError> = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            obs::count!("serve.requests.healthz");
            Ok(Routed::Ready(200, healthz(state)))
        }
        ("GET", "/metrics") => {
            obs::count!("serve.requests.metrics");
            Ok(Routed::Ready(200, obs::export_json("serve")))
        }
        ("GET", "/metrics/deterministic") => {
            obs::count!("serve.requests.metrics");
            Ok(Routed::Ready(200, obs::export_deterministic("serve")))
        }
        ("POST", "/parse") => {
            obs::count!("serve.requests.parse");
            parse_spec(state, req)
        }
        ("POST", "/cover/verify") => {
            obs::count!("serve.requests.cover");
            rect_spec(state, req, false)
        }
        ("POST", "/discrepancy") => {
            obs::count!("serve.requests.discrepancy");
            rect_spec(state, req, true)
        }
        ("POST", "/stream/open") => {
            obs::count!("serve.requests.stream_open");
            stream_open_spec(state, req)
        }
        ("POST", "/stream/feed") => {
            obs::count!("serve.requests.stream_feed");
            stream_feed_spec(state, req)
        }
        ("POST", "/stream/query") => {
            obs::count!("serve.requests.stream_query");
            stream_session_spec(state, req, StreamOp::Query)
        }
        ("POST", "/stream/close") => {
            obs::count!("serve.requests.stream_close");
            stream_session_spec(state, req, StreamOp::Close)
        }
        ("POST", "/shutdown") => {
            obs::count!("serve.requests.shutdown");
            state.shutdown.store(true, Ordering::SeqCst);
            Ok(Routed::Ready(
                200,
                single_line(Json::obj(vec![("draining", Json::Bool(true))])),
            ))
        }
        (
            _,
            "/healthz"
            | "/metrics"
            | "/metrics/deterministic"
            | "/parse"
            | "/cover/verify"
            | "/discrepancy"
            | "/stream/open"
            | "/stream/feed"
            | "/stream/query"
            | "/stream/close"
            | "/shutdown",
        ) => Err(ApiError::MethodNotAllowed(req.path.clone())),
        (_, path) => Err(ApiError::NotFound(path.to_string())),
    };
    match result {
        Ok(r) => r,
        Err(e) => Routed::Ready(e.status(), e.body()),
    }
}

/// `POST /parse`: body → bounds-checked job spec.
fn parse_spec(state: &State, req: &Request) -> Result<Routed, ApiError> {
    if state.shutting_down() {
        return Err(ApiError::ShuttingDown);
    }
    let preq = parse_body(req).and_then(|b| ParseRequest::from_json(&b))?;
    let grammar = preq.spec.build()?;
    Ok(Routed::Enqueue(JobSpec::Parse {
        key: grammar.content_hash(),
        grammar,
        word: preq.word,
        check: preq.check,
    }))
}

/// `POST /cover/verify` and `POST /discrepancy` share the rectangle
/// path; the boolean picks the kernel.
fn rect_spec(state: &State, req: &Request, discrepancy: bool) -> Result<Routed, ApiError> {
    if state.shutting_down() {
        return Err(ApiError::ShuttingDown);
    }
    let rreq = parse_body(req).and_then(|b| RectRequest::from_json(&b, discrepancy))?;
    Ok(Routed::Enqueue(JobSpec::Rect {
        req: rreq,
        discrepancy,
    }))
}

/// `POST /stream/open`: body → a validated Open op keyed by the
/// deterministic session id (a pure function of grammar hash, window,
/// regex, and name — so every client, thread count, and shard layout
/// derives the same id).
fn stream_open_spec(state: &State, req: &Request) -> Result<Routed, ApiError> {
    if state.shutting_down() {
        return Err(ApiError::ShuttingDown);
    }
    let oreq = parse_body(req).and_then(|b| StreamOpenRequest::from_json(&b))?;
    let grammar = oreq.spec.build()?;
    let session = ucfg_stream::session_id(
        grammar.content_hash(),
        oreq.window,
        oreq.regex.as_deref(),
        &oreq.name,
    );
    Ok(Routed::Enqueue(JobSpec::Stream {
        session,
        op: StreamOp::Open {
            grammar,
            window: oreq.window,
            regex: oreq.regex,
            name: oreq.name,
        },
    }))
}

/// `POST /stream/feed`: appends tokens or truncates, per the body.
fn stream_feed_spec(state: &State, req: &Request) -> Result<Routed, ApiError> {
    if state.shutting_down() {
        return Err(ApiError::ShuttingDown);
    }
    let freq = parse_body(req).and_then(|b| StreamFeedRequest::from_json(&b))?;
    let (session, op) = match freq {
        StreamFeedRequest::Tokens { session, text } => (session, StreamOp::Feed { text }),
        StreamFeedRequest::Truncate { session, to } => (session, StreamOp::Truncate { to }),
    };
    Ok(Routed::Enqueue(JobSpec::Stream { session, op }))
}

/// `POST /stream/query` and `POST /stream/close`: body carries only
/// the session id; the op is fixed by the path.
fn stream_session_spec(state: &State, req: &Request, op: StreamOp) -> Result<Routed, ApiError> {
    if state.shutting_down() {
        return Err(ApiError::ShuttingDown);
    }
    let session = parse_body(req).and_then(|b| session_from_json(&b))?;
    Ok(Routed::Enqueue(JobSpec::Stream { session, op }))
}

/// Enqueue a validated spec on the shard owning its content hash. The
/// reply sink pushes a completion and wakes the event loop.
fn enqueue_job(state: &Arc<State>, spec: JobSpec, slot: usize, gen: u64) -> Result<(), ApiError> {
    match spec {
        JobSpec::Parse {
            key,
            grammar,
            word,
            check,
        } => {
            let st = Arc::clone(state);
            let reply = ReplySink::from_fn(move |res: Result<ParseOutcome, ApiError>| {
                let (status, body) = match res {
                    Ok(o) => (200, render_parse(&o)),
                    Err(e) => (e.status(), e.body()),
                };
                push_completion(&st, slot, gen, status, body);
            });
            state
                .shards
                .pick(key)
                .sched
                .try_enqueue(Job::Parse(ParseJob {
                    key,
                    grammar,
                    word,
                    check,
                    enqueued: Instant::now(),
                    reply,
                }))
        }
        JobSpec::Rect { req, discrepancy } => {
            let st = Arc::clone(state);
            let reply = ReplySink::from_fn(move |res: Result<String, ApiError>| {
                let (status, body) = match res {
                    Ok(b) => (200, b),
                    Err(e) => (e.status(), e.body()),
                };
                push_completion(&st, slot, gen, status, body);
            });
            state
                .shards
                .pick(req.cache_key())
                .sched
                .try_enqueue(Job::Rect(RectJob {
                    req,
                    discrepancy,
                    enqueued: Instant::now(),
                    reply,
                }))
        }
        JobSpec::Stream { session, op } => {
            let st = Arc::clone(state);
            let reply = ReplySink::from_fn(move |res: Result<String, ApiError>| {
                let (status, body) = match res {
                    Ok(b) => (200, b),
                    Err(e) => (e.status(), e.body()),
                };
                push_completion(&st, slot, gen, status, body);
            });
            state
                .shards
                .pick(session)
                .sched
                .try_enqueue(Job::Stream(StreamJob {
                    session,
                    op,
                    enqueued: Instant::now(),
                    reply,
                }))
        }
    }
}

fn single_line(v: Json) -> String {
    let mut s = v.render();
    s.push('\n');
    s
}

fn healthz(state: &State) -> String {
    // Per-shard views. /healthz is excluded from CI byte-diffs (it
    // already carries uptime), so shard-layout-dependent fields are
    // fine here.
    let depths: Vec<Json> = state
        .shards
        .shards()
        .iter()
        .map(|s| Json::Int(s.sched.queue_len() as i64))
        .collect();
    let caps: Vec<Json> = state
        .shards
        .shards()
        .iter()
        .map(|s| Json::Int(s.sched.depth() as i64))
        .collect();
    single_line(Json::obj(vec![
        ("status", Json::str("ok")),
        ("queue_depth", Json::Int(state.shards.queue_len() as i64)),
        ("shard_queue_depths", Json::Arr(depths)),
        ("shard_queue_capacities", Json::Arr(caps)),
        (
            "connections",
            Json::Int(state.connections.load(Ordering::SeqCst) as i64),
        ),
        ("shards", Json::Int(state.shards.len() as i64)),
        (
            "stream_sessions",
            Json::Int(state.shards.session_count() as i64),
        ),
        (
            "flush_writes",
            Json::Int(state.flush_writes.load(Ordering::SeqCst) as i64),
        ),
        (
            "uptime_ms",
            Json::Int(state.started.elapsed().as_millis() as i64),
        ),
        ("threads", Json::Int(par::thread_count() as i64)),
    ]))
}

fn render_parse(o: &ParseOutcome) -> String {
    let mut fields = vec![
        ("member", Json::Bool(o.member)),
        ("parse_count", Json::str(o.parse_count.clone())),
        ("ambiguous", Json::Bool(o.ambiguous)),
        (
            "grammar_hash",
            Json::str(format!("{:016x}", o.grammar_hash)),
        ),
        ("cache", Json::str(if o.cache_hit { "hit" } else { "miss" })),
    ];
    if let Some(ok) = o.cross_checked {
        fields.push(("cross_check", Json::str(if ok { "ok" } else { "mismatch" })));
    }
    single_line(Json::obj(fields))
}

fn parse_body(req: &Request) -> Result<Json, ApiError> {
    let text = req
        .body_str()
        .ok_or_else(|| ApiError::BadRequest("body is not UTF-8".into()))?;
    Json::parse(text).map_err(|e| ApiError::BadRequest(format!("body: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    /// A state with live shard drain threads, so `route_sync` can
    /// resolve Enqueue specs end to end. The threads park on their
    /// condvars and die with the process.
    fn test_state(queue_depth: usize, deadline_ms: u64) -> Arc<State> {
        let cfg = ServeConfig {
            queue_depth,
            deadline_ms,
            ..ServeConfig::default()
        };
        let state = Arc::new(State {
            shards: ShardSet::new(
                cfg.shards,
                cfg.cache_capacity,
                cfg.queue_depth,
                Duration::from_millis(cfg.deadline_ms),
            ),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            requests: AtomicU64::new(0),
            connections: AtomicUsize::new(0),
            flush_writes: AtomicU64::new(0),
            completions: Mutex::new(Vec::new()),
            waker: OnceLock::new(),
            cfg,
        });
        state.shards.spawn().unwrap();
        state
    }

    /// Route a request and, when it enqueues, run the job through the
    /// state's live shards — the blocking analogue of the event loop.
    fn route_sync(state: &Arc<State>, req: &Request) -> (u16, String) {
        match route(state, req) {
            Routed::Ready(status, body) => (status, body),
            Routed::Enqueue(spec) => {
                let (tx, rx) = mpsc::channel::<(u16, String)>();
                let enqueued = match spec {
                    JobSpec::Parse {
                        key,
                        grammar,
                        word,
                        check,
                    } => {
                        let reply =
                            ReplySink::from_fn(move |res: Result<ParseOutcome, ApiError>| {
                                let msg = match res {
                                    Ok(o) => (200, render_parse(&o)),
                                    Err(e) => (e.status(), e.body()),
                                };
                                let _ = tx.send(msg);
                            });
                        state
                            .shards
                            .pick(key)
                            .sched
                            .try_enqueue(Job::Parse(ParseJob {
                                key,
                                grammar,
                                word,
                                check,
                                enqueued: Instant::now(),
                                reply,
                            }))
                    }
                    JobSpec::Rect { req, discrepancy } => {
                        let reply = ReplySink::from_fn(move |res: Result<String, ApiError>| {
                            let msg = match res {
                                Ok(b) => (200, b),
                                Err(e) => (e.status(), e.body()),
                            };
                            let _ = tx.send(msg);
                        });
                        state
                            .shards
                            .pick(req.cache_key())
                            .sched
                            .try_enqueue(Job::Rect(RectJob {
                                req,
                                discrepancy,
                                enqueued: Instant::now(),
                                reply,
                            }))
                    }
                    JobSpec::Stream { session, op } => {
                        let reply = ReplySink::from_fn(move |res: Result<String, ApiError>| {
                            let msg = match res {
                                Ok(b) => (200, b),
                                Err(e) => (e.status(), e.body()),
                            };
                            let _ = tx.send(msg);
                        });
                        state
                            .shards
                            .pick(session)
                            .sched
                            .try_enqueue(Job::Stream(StreamJob {
                                session,
                                op,
                                enqueued: Instant::now(),
                                reply,
                            }))
                    }
                };
                match enqueued {
                    Ok(()) => rx.recv_timeout(Duration::from_secs(30)).expect("reply"),
                    Err(e) => (e.status(), e.body()),
                }
            }
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            headers: vec![],
            body: body.as_bytes().to_vec(),
            http10: false,
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            headers: vec![],
            body: vec![],
            http10: false,
        }
    }

    #[test]
    fn routing_basics() {
        let state = test_state(8, 1000);
        let (status, body) = route_sync(&state, &get("/healthz"));
        assert_eq!(status, 200);
        let v = Json::parse(body.trim_end()).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(v.get("shards"), Some(&Json::Int(1)));
        assert_eq!(v.get("connections"), Some(&Json::Int(0)));

        let (status, _) = route_sync(&state, &get("/nope"));
        assert_eq!(status, 404);
        let (status, body) = route_sync(&state, &get("/parse"));
        assert_eq!(status, 405, "{body}");
        let (status, body) = route_sync(&state, &post("/parse", "not json"));
        assert_eq!(status, 400, "{body}");
    }

    #[test]
    fn metrics_endpoints_render() {
        let state = test_state(8, 1000);
        let (status, body) = route_sync(&state, &get("/metrics"));
        assert_eq!(status, 200);
        assert!(body.contains("\"volatile\""));
        let (status, det) = route_sync(&state, &get("/metrics/deterministic"));
        assert_eq!(status, 200);
        assert!(!det.contains("\"volatile\""));
        assert!(det.contains("\"counters\""));
    }

    #[test]
    fn parse_requests_flow_through_the_shards() {
        let state = test_state(8, 5000);
        let (status, body) = route_sync(
            &state,
            &post("/parse", r#"{"grammar":"S -> a S | b","word":"aab"}"#),
        );
        assert_eq!(status, 200, "{body}");
        let v = Json::parse(body.trim_end()).unwrap();
        assert_eq!(v.get("member"), Some(&Json::Bool(true)));
        assert_eq!(v.get("cache").and_then(Json::as_str), Some("miss"));

        // Warm repeat: same grammar hash lands on the same shard and
        // hits its cache.
        let (_, body) = route_sync(
            &state,
            &post("/parse", r#"{"grammar":"S -> a S | b","word":"b"}"#),
        );
        let v = Json::parse(body.trim_end()).unwrap();
        assert_eq!(v.get("cache").and_then(Json::as_str), Some("hit"));
    }

    #[test]
    fn cover_and_discrepancy_endpoints_compute() {
        let state = test_state(8, 5000);
        let (status, body) = route_sync(&state, &post("/cover/verify", r#"{"n":4}"#));
        assert_eq!(status, 200, "{body}");
        let v = Json::parse(body.trim_end()).unwrap();
        assert_eq!(v.get("size"), Some(&Json::Int(4)));
        assert_eq!(v.get("covers_exactly"), Some(&Json::Bool(true)));
        assert_eq!(v.get("all_balanced"), Some(&Json::Bool(true)));
        assert_eq!(v.get("cache").and_then(Json::as_str), Some("miss"));

        // Warm repeat: same family resolves from the cache.
        let (_, body) = route_sync(&state, &post("/cover/verify", r#"{"n":4}"#));
        let v = Json::parse(body.trim_end()).unwrap();
        assert_eq!(v.get("cache").and_then(Json::as_str), Some("hit"));

        let (status, body) = route_sync(&state, &post("/discrepancy", r#"{"n":4}"#));
        assert_eq!(status, 200, "{body}");
        let v = Json::parse(body.trim_end()).unwrap();
        assert_eq!(v.get("sums_to_gap"), Some(&Json::Bool(true)));

        // n without block structure: 400 from /discrepancy only.
        let (status, _) = route_sync(&state, &post("/discrepancy", r#"{"n":6}"#));
        assert_eq!(status, 400);
        let (status, _) = route_sync(&state, &post("/cover/verify", r#"{"n":6}"#));
        assert_eq!(status, 200);
    }

    #[test]
    fn shutdown_endpoint_flips_the_flag_and_sheds() {
        let state = test_state(8, 1000);
        assert!(!state.shutting_down());
        let (status, body) = route_sync(&state, &post("/shutdown", ""));
        assert_eq!(status, 200);
        assert!(body.contains("draining"));
        assert!(state.shutting_down());
        let (status, body) = route_sync(&state, &post("/cover/verify", r#"{"n":4}"#));
        assert_eq!(status, 503);
        assert!(body.contains("shutting_down"), "{body}");
    }

    #[test]
    fn render_parse_is_stable_json() {
        let o = ParseOutcome {
            member: true,
            parse_count: "12".into(),
            ambiguous: true,
            grammar_hash: 0xabc,
            cache_hit: false,
            cross_checked: Some(true),
        };
        let line = render_parse(&o);
        assert_eq!(
            line,
            "{\"member\":true,\"parse_count\":\"12\",\"ambiguous\":true,\
             \"grammar_hash\":\"0000000000000abc\",\"cache\":\"miss\",\
             \"cross_check\":\"ok\"}\n"
        );
    }

    #[test]
    fn sharded_responses_match_single_shard() {
        let bodies: Vec<Vec<String>> = [1usize, 4]
            .into_iter()
            .map(|shards| {
                let cfg = ServeConfig {
                    shards,
                    ..ServeConfig::default()
                };
                let state = Arc::new(State {
                    shards: ShardSet::new(
                        cfg.shards,
                        cfg.cache_capacity,
                        cfg.queue_depth,
                        Duration::from_millis(cfg.deadline_ms),
                    ),
                    shutdown: AtomicBool::new(false),
                    started: Instant::now(),
                    requests: AtomicU64::new(0),
                    connections: AtomicUsize::new(0),
                    flush_writes: AtomicU64::new(0),
                    completions: Mutex::new(Vec::new()),
                    waker: OnceLock::new(),
                    cfg,
                });
                state.shards.spawn().unwrap();
                [
                    r#"{"grammar":"S -> a S | b","word":"aab"}"#,
                    r#"{"grammar":"S -> S S | a","word":"aaa"}"#,
                    r#"{"builtin":"example3","n":2,"word":"ab"}"#,
                ]
                .iter()
                .map(|body| route_sync(&state, &post("/parse", body)).1)
                .collect()
            })
            .collect();
        assert_eq!(
            bodies[0], bodies[1],
            "shard count must not leak into bodies"
        );
    }

    #[test]
    fn stream_endpoints_flow_end_to_end() {
        let state = test_state(8, 5000);
        let open = r#"{"grammar":"S -> a S b | a b","window":8,"regex":"a(a|b)*b","name":"t"}"#;
        let (status, body) = route_sync(&state, &post("/stream/open", open));
        assert_eq!(status, 200, "{body}");
        let v = Json::parse(body.trim_end()).unwrap();
        let session = v.get("session").and_then(Json::as_str).unwrap().to_string();
        assert_eq!(session.len(), 16);
        assert_eq!(v.get("product_nonempty"), Some(&Json::Bool(true)));

        // Re-opening the same parameters is idempotent: same id.
        let (status, body2) = route_sync(&state, &post("/stream/open", open));
        assert_eq!(status, 200);
        assert_eq!(body2, body);

        let feed = format!(r#"{{"session":"{session}","tokens":"aabb"}}"#);
        let (status, body) = route_sync(&state, &post("/stream/feed", &feed));
        assert_eq!(status, 200, "{body}");
        let v = Json::parse(body.trim_end()).unwrap();
        assert_eq!(v.get("fed"), Some(&Json::Int(4)));
        assert_eq!(v.get("total"), Some(&Json::Int(4)));
        assert_eq!(v.get("member"), Some(&Json::Bool(true)));

        let q = format!(r#"{{"session":"{session}"}}"#);
        let (status, body) = route_sync(&state, &post("/stream/query", &q));
        assert_eq!(status, 200, "{body}");
        let v = Json::parse(body.trim_end()).unwrap();
        assert_eq!(v.get("window").and_then(Json::as_str), Some("aabb"));
        assert_eq!(v.get("member"), Some(&Json::Bool(true)));
        assert_eq!(v.get("count").and_then(Json::as_str), Some("1"));

        let trunc = format!(r#"{{"session":"{session}","truncate":2}}"#);
        let (status, body) = route_sync(&state, &post("/stream/feed", &trunc));
        assert_eq!(status, 200, "{body}");
        let v = Json::parse(body.trim_end()).unwrap();
        assert_eq!(v.get("total"), Some(&Json::Int(2)));

        let (status, body) = route_sync(&state, &post("/stream/close", &q));
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"closed\":true"));
        // The session is gone now.
        let (status, _) = route_sync(&state, &post("/stream/query", &q));
        assert_eq!(status, 400);
    }

    #[test]
    fn stream_endpoints_reject_malformed_requests() {
        let state = test_state(8, 5000);
        let (status, _) = route_sync(&state, &get("/stream/open"));
        assert_eq!(status, 405);
        let (status, _) = route_sync(&state, &post("/stream/open", "nope"));
        assert_eq!(status, 400);
        let (status, body) = route_sync(
            &state,
            &post("/stream/open", r#"{"grammar":"S -> a","window":0}"#),
        );
        assert_eq!(status, 400, "{body}");
        let (status, body) = route_sync(
            &state,
            &post(
                "/stream/feed",
                r#"{"session":"0000000000000001","tokens":"a","truncate":1}"#,
            ),
        );
        assert_eq!(status, 400, "{body}");
        // Well-formed op on a session nobody opened.
        let (status, body) = route_sync(
            &state,
            &post(
                "/stream/feed",
                r#"{"session":"0000000000000001","tokens":"a"}"#,
            ),
        );
        assert_eq!(status, 400);
        assert!(body.contains("no such session"), "{body}");
    }

    #[test]
    fn stream_responses_match_across_shard_counts() {
        let bodies: Vec<Vec<String>> = [1usize, 4]
            .into_iter()
            .map(|shards| {
                let cfg = ServeConfig {
                    shards,
                    ..ServeConfig::default()
                };
                let state = Arc::new(State {
                    shards: ShardSet::new(
                        cfg.shards,
                        cfg.cache_capacity,
                        cfg.queue_depth,
                        Duration::from_millis(cfg.deadline_ms),
                    ),
                    shutdown: AtomicBool::new(false),
                    started: Instant::now(),
                    requests: AtomicU64::new(0),
                    connections: AtomicUsize::new(0),
                    flush_writes: AtomicU64::new(0),
                    completions: Mutex::new(Vec::new()),
                    waker: OnceLock::new(),
                    cfg,
                });
                state.shards.spawn().unwrap();
                let mut out = Vec::new();
                let open =
                    r#"{"grammar":"S -> a S b | a b","window":4,"regex":"a(a|b)*b","name":"d"}"#;
                let (_, body) = route_sync(&state, &post("/stream/open", open));
                out.push(body.clone());
                let session = Json::parse(body.trim_end())
                    .unwrap()
                    .get("session")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string();
                for step in [
                    format!(r#"{{"session":"{session}","tokens":"aab"}}"#),
                    format!(r#"{{"session":"{session}","tokens":"baab"}}"#),
                    format!(r#"{{"session":"{session}","truncate":5}}"#),
                ] {
                    out.push(route_sync(&state, &post("/stream/feed", &step)).1);
                }
                let q = format!(r#"{{"session":"{session}"}}"#);
                out.push(route_sync(&state, &post("/stream/query", &q)).1);
                out.push(route_sync(&state, &post("/stream/close", &q)).1);
                out
            })
            .collect();
        assert_eq!(
            bodies[0], bodies[1],
            "shard count must not leak into stream bodies"
        );
    }

    #[test]
    fn healthz_reports_per_shard_queues_and_sessions() {
        let state = test_state(8, 1000);
        let (_, body) = route_sync(&state, &get("/healthz"));
        let v = Json::parse(body.trim_end()).unwrap();
        let Some(Json::Arr(depths)) = v.get("shard_queue_depths") else {
            panic!("missing shard_queue_depths: {body}");
        };
        let Some(Json::Arr(caps)) = v.get("shard_queue_capacities") else {
            panic!("missing shard_queue_capacities: {body}");
        };
        assert_eq!(depths.len(), state.shards.len());
        assert_eq!(caps.len(), state.shards.len());
        assert!(caps.iter().all(|c| matches!(c, Json::Int(n) if *n >= 1)));
        assert_eq!(v.get("stream_sessions"), Some(&Json::Int(0)));

        let open = r#"{"grammar":"S -> a S b | a b","window":4,"name":"h"}"#;
        let (status, _) = route_sync(&state, &post("/stream/open", open));
        assert_eq!(status, 200);
        let (_, body) = route_sync(&state, &get("/healthz"));
        let v = Json::parse(body.trim_end()).unwrap();
        assert_eq!(v.get("stream_sessions"), Some(&Json::Int(1)));
    }
}
