//! The TCP server: accept loop, routing, and graceful shutdown.
//!
//! Threading model: one accept loop (non-blocking, polled), one
//! scheduler thread (the batcher), and one thread per live connection
//! (bounded). Shutdown — via SIGTERM/SIGINT, `POST /shutdown`, or a
//! [`ServerHandle`] — runs in strict order: stop accepting, join the
//! connection threads (their in-flight requests complete, which
//! requires the scheduler to still be running), then stop and join the
//! scheduler once no producer remains. That ordering is what makes
//! "drain in-flight batches" a guarantee instead of a race.

use crate::batch::{ParseJob, ParseOutcome, Scheduler};
use crate::cache::{Artifact, ArtifactCache, RectsArtifact};
use crate::http::{read_request, write_response, ReadOutcome, Request};
use crate::json::Json;
use crate::protocol::{ApiError, ParseRequest, RectRequest};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};
use ucfg_support::{obs, par};

/// Set by the SIGTERM/SIGINT handlers; polled by every accept loop.
/// Process-global because signal dispositions are process-global.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use super::SIGNAL_SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // An atomic store is async-signal-safe; everything else happens
        // on the accept loop when it next polls the flag.
        SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
    }

    /// Route SIGTERM and SIGINT to the shutdown flag. Uses the libc
    /// `signal(2)` symbol std already links — the workspace stays
    /// dependency-free.
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        let handler: extern "C" fn(i32) = on_signal;
        unsafe {
            signal(SIGINT, handler as usize);
            signal(SIGTERM, handler as usize);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    /// No-op off Unix; `POST /shutdown` and [`super::ServerHandle`]
    /// still provide graceful shutdown.
    pub fn install() {}
}

/// Server configuration. `Default` gives the documented defaults; the
/// CLI overrides port/threads, tests override the bounds.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Interface to bind (default loopback).
    pub host: String,
    /// TCP port; 0 asks the OS for an ephemeral port.
    pub port: u16,
    /// Bounded batch-queue depth; a full queue load-sheds.
    pub queue_depth: usize,
    /// Per-request queue deadline in milliseconds.
    pub deadline_ms: u64,
    /// Artifact-cache capacity (entries).
    pub cache_capacity: usize,
    /// Maximum concurrent connections; excess connections get an
    /// immediate 503 and are closed.
    pub max_connections: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            host: "127.0.0.1".to_string(),
            port: 7878,
            queue_depth: 256,
            deadline_ms: 10_000,
            cache_capacity: 64,
            max_connections: 64,
        }
    }
}

pub(crate) struct State {
    cfg: ServeConfig,
    cache: Mutex<ArtifactCache>,
    sched: Scheduler,
    shutdown: AtomicBool,
    started: Instant,
    requests: AtomicU64,
}

impl State {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGNAL_SHUTDOWN.load(Ordering::SeqCst)
    }
}

/// A clonable handle for telling a running server to drain and exit
/// (used by tests and by in-process embedders like `serve_bench`).
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<State>,
}

impl ServerHandle {
    /// Begin graceful shutdown.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }
}

/// What [`Server::run`] reports after a graceful drain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Total HTTP requests answered (any status).
    pub requests: u64,
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl Server {
    /// Bind `cfg.host:cfg.port` and prepare the state. Does not accept
    /// yet — call [`Server::run`].
    pub fn bind(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind((cfg.host.as_str(), cfg.port))?;
        listener.set_nonblocking(true)?;
        let state = Arc::new(State {
            cache: Mutex::new(ArtifactCache::new(cfg.cache_capacity)),
            sched: Scheduler::new(cfg.queue_depth, Duration::from_millis(cfg.deadline_ms)),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            requests: AtomicU64::new(0),
            cfg,
        });
        Ok(Server { listener, state })
    }

    /// Where the server actually listens (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown handle, safe to move to another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Install SIGTERM/SIGINT handlers that trigger graceful shutdown.
    /// Call once from the CLI; in-process embedders skip this and use
    /// [`Server::handle`].
    pub fn install_signal_handlers() {
        sig::install();
    }

    /// Serve until shutdown is requested, then drain and return.
    pub fn run(self) -> io::Result<ServeSummary> {
        let state = Arc::clone(&self.state);

        let sched_state = Arc::clone(&state);
        let scheduler = thread::Builder::new()
            .name("ucfg-serve-batch".into())
            .spawn(move || sched_state.sched.run(&sched_state.cache))?;

        let mut workers: Vec<thread::JoinHandle<()>> = Vec::new();
        while !state.shutting_down() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    workers.retain(|h| !h.is_finished());
                    if workers.len() >= state.cfg.max_connections {
                        obs::count!("serve.rejects.connections");
                        let mut s = stream;
                        let body = ApiError::LoadShed {
                            depth: state.cfg.max_connections,
                        }
                        .body();
                        let _ = write_response(&mut s, 503, body.as_bytes(), true);
                        continue;
                    }
                    let conn_state = Arc::clone(&state);
                    let h = thread::Builder::new()
                        .name("ucfg-serve-conn".into())
                        .spawn(move || {
                            let _ = handle_connection(conn_state, stream);
                        })?;
                    workers.push(h);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }

        // Graceful drain: connections first (the scheduler must stay
        // alive while they finish their in-flight requests), then the
        // scheduler, which exits once the queue is empty.
        state.shutdown.store(true, Ordering::SeqCst);
        for h in workers {
            let _ = h.join();
        }
        state.sched.stop();
        let _ = scheduler.join();

        Ok(ServeSummary {
            requests: state.requests.load(Ordering::SeqCst),
        })
    }
}

/// Per-connection loop: keep-alive request/response until EOF, error,
/// client `Connection: close`, or server shutdown.
fn handle_connection(state: Arc<State>, stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true)?;
    // Short read timeout so idle keep-alive connections notice shutdown.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);

    loop {
        match read_request(&mut reader)? {
            ReadOutcome::Eof => return Ok(()),
            ReadOutcome::Idle => {
                if state.shutting_down() {
                    return Ok(());
                }
            }
            ReadOutcome::Malformed(msg) => {
                let body = ApiError::BadRequest(msg).body();
                state.requests.fetch_add(1, Ordering::SeqCst);
                write_response(&mut writer, 400, body.as_bytes(), true)?;
                return Ok(());
            }
            ReadOutcome::Request(req) => {
                let (status, body) = route(&state, &req);
                state.requests.fetch_add(1, Ordering::SeqCst);
                // After a shutdown request (or signal) finish this
                // response, then close.
                let close = req.wants_close() || state.shutting_down();
                write_response(&mut writer, status, body.as_bytes(), close)?;
                if close {
                    return Ok(());
                }
            }
        }
    }
}

/// Dispatch one request to its endpoint. Infallible: protocol errors
/// become their JSON error bodies.
fn route(state: &State, req: &Request) -> (u16, String) {
    let result = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            obs::count!("serve.requests.healthz");
            Ok(healthz(state))
        }
        ("GET", "/metrics") => {
            obs::count!("serve.requests.metrics");
            Ok(obs::export_json("serve"))
        }
        ("GET", "/metrics/deterministic") => {
            obs::count!("serve.requests.metrics");
            Ok(obs::export_deterministic("serve"))
        }
        ("POST", "/parse") => {
            obs::count!("serve.requests.parse");
            parse_endpoint(state, req)
        }
        ("POST", "/cover/verify") => {
            obs::count!("serve.requests.cover");
            rect_endpoint(state, req, false)
        }
        ("POST", "/discrepancy") => {
            obs::count!("serve.requests.discrepancy");
            rect_endpoint(state, req, true)
        }
        ("POST", "/shutdown") => {
            obs::count!("serve.requests.shutdown");
            state.shutdown.store(true, Ordering::SeqCst);
            Ok(single_line(Json::obj(vec![("draining", Json::Bool(true))])))
        }
        (
            _,
            "/healthz"
            | "/metrics"
            | "/metrics/deterministic"
            | "/parse"
            | "/cover/verify"
            | "/discrepancy"
            | "/shutdown",
        ) => Err(ApiError::MethodNotAllowed(req.path.clone())),
        (_, path) => Err(ApiError::NotFound(path.to_string())),
    };
    match result {
        Ok(body) => (200, body),
        Err(e) => (e.status(), e.body()),
    }
}

fn single_line(v: Json) -> String {
    let mut s = v.render();
    s.push('\n');
    s
}

fn healthz(state: &State) -> String {
    single_line(Json::obj(vec![
        ("status", Json::str("ok")),
        ("queue_depth", Json::Int(state.sched.queue_len() as i64)),
        (
            "uptime_ms",
            Json::Int(state.started.elapsed().as_millis() as i64),
        ),
        ("threads", Json::Int(par::thread_count() as i64)),
    ]))
}

/// `POST /parse`: body → job → bounded queue → batch → outcome.
fn parse_endpoint(state: &State, req: &Request) -> Result<String, ApiError> {
    if state.shutting_down() {
        return Err(ApiError::ShuttingDown);
    }
    let preq = parse_body(req).and_then(|b| ParseRequest::from_json(&b))?;
    let grammar = preq.spec.build()?;
    let key = grammar.content_hash();

    let (tx, rx) = mpsc::channel();
    state.sched.try_enqueue(ParseJob {
        key,
        grammar,
        word: preq.word,
        check: preq.check,
        enqueued: Instant::now(),
        reply: tx,
    })?;

    // The scheduler always answers (parse, deadline reject, or drain);
    // the generous timeout is a backstop against scheduler death, not
    // part of the protocol.
    let deadline = Duration::from_millis(state.cfg.deadline_ms) + Duration::from_secs(60);
    let outcome = rx
        .recv_timeout(deadline)
        .map_err(|_| ApiError::Internal("scheduler did not answer".into()))??;
    Ok(render_parse(&outcome))
}

fn render_parse(o: &ParseOutcome) -> String {
    let mut fields = vec![
        ("member", Json::Bool(o.member)),
        ("parse_count", Json::str(o.parse_count.clone())),
        ("ambiguous", Json::Bool(o.ambiguous)),
        (
            "grammar_hash",
            Json::str(format!("{:016x}", o.grammar_hash)),
        ),
        ("cache", Json::str(if o.cache_hit { "hit" } else { "miss" })),
    ];
    if let Some(ok) = o.cross_checked {
        fields.push(("cross_check", Json::str(if ok { "ok" } else { "mismatch" })));
    }
    single_line(Json::obj(fields))
}

/// `POST /cover/verify` and `POST /discrepancy` share the rectangle
/// artifact path; the boolean picks the kernel.
fn rect_endpoint(state: &State, req: &Request, discrepancy: bool) -> Result<String, ApiError> {
    if state.shutting_down() {
        return Err(ApiError::ShuttingDown);
    }
    let rreq = parse_body(req).and_then(|b| RectRequest::from_json(&b, discrepancy))?;
    let (artifact, hit) = state
        .cache
        .lock()
        .expect("cache poisoned")
        .get_or_insert_with(rreq.cache_key(), || {
            RectsArtifact::build(rreq).map(Artifact::Rects)
        })?;
    let rects = artifact
        .as_rects()
        .ok_or_else(|| ApiError::Internal("key collision in cache".into()))?;

    let cache_tag = ("cache", Json::str(if hit { "hit" } else { "miss" }));
    let threads = par::thread_count();
    if discrepancy {
        let _t = obs::span!("serve.discrepancy");
        let (discs, sums) =
            ucfg_core::cover::discrepancy_accounting_threads(rreq.n, &rects.rects, threads);
        Ok(single_line(Json::obj(vec![
            ("n", Json::Int(rreq.n as i64)),
            ("family", Json::str(rreq.family.name())),
            ("size", Json::Int(rects.rects.len() as i64)),
            (
                "discrepancies",
                Json::Arr(discs.into_iter().map(Json::Int).collect()),
            ),
            ("sums_to_gap", Json::Bool(sums)),
            cache_tag,
        ])))
    } else {
        let _t = obs::span!("serve.cover.verify");
        let report = ucfg_core::cover::verify_cover_threads(rreq.n, &rects.rects, threads);
        Ok(single_line(Json::obj(vec![
            ("n", Json::Int(rreq.n as i64)),
            ("family", Json::str(rreq.family.name())),
            ("size", Json::Int(report.size as i64)),
            ("covers_exactly", Json::Bool(report.covers_exactly)),
            ("disjoint", Json::Bool(report.disjoint)),
            ("all_balanced", Json::Bool(report.all_balanced)),
            ("max_overlap", Json::Int(report.max_overlap as i64)),
            cache_tag,
        ])))
    }
}

fn parse_body(req: &Request) -> Result<Json, ApiError> {
    let text = req
        .body_str()
        .ok_or_else(|| ApiError::BadRequest("body is not UTF-8".into()))?;
    Json::parse(text).map_err(|e| ApiError::BadRequest(format!("body: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_state(queue_depth: usize, deadline_ms: u64) -> Arc<State> {
        let cfg = ServeConfig {
            queue_depth,
            deadline_ms,
            ..ServeConfig::default()
        };
        Arc::new(State {
            cache: Mutex::new(ArtifactCache::new(cfg.cache_capacity)),
            sched: Scheduler::new(cfg.queue_depth, Duration::from_millis(cfg.deadline_ms)),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            requests: AtomicU64::new(0),
            cfg,
        })
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            headers: vec![],
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            headers: vec![],
            body: vec![],
        }
    }

    #[test]
    fn routing_basics() {
        let state = test_state(8, 1000);
        let (status, body) = route(&state, &get("/healthz"));
        assert_eq!(status, 200);
        let v = Json::parse(body.trim_end()).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));

        let (status, _) = route(&state, &get("/nope"));
        assert_eq!(status, 404);
        let (status, body) = route(&state, &get("/parse"));
        assert_eq!(status, 405, "{body}");
        let (status, body) = route(&state, &post("/parse", "not json"));
        assert_eq!(status, 400, "{body}");
    }

    #[test]
    fn metrics_endpoints_render() {
        let state = test_state(8, 1000);
        let (status, body) = route(&state, &get("/metrics"));
        assert_eq!(status, 200);
        assert!(body.contains("\"volatile\""));
        let (status, det) = route(&state, &get("/metrics/deterministic"));
        assert_eq!(status, 200);
        assert!(!det.contains("\"volatile\""));
        assert!(det.contains("\"counters\""));
    }

    #[test]
    fn cover_and_discrepancy_endpoints_compute() {
        let state = test_state(8, 1000);
        let (status, body) = route(&state, &post("/cover/verify", r#"{"n":4}"#));
        assert_eq!(status, 200, "{body}");
        let v = Json::parse(body.trim_end()).unwrap();
        assert_eq!(v.get("size"), Some(&Json::Int(4)));
        assert_eq!(v.get("covers_exactly"), Some(&Json::Bool(true)));
        assert_eq!(v.get("all_balanced"), Some(&Json::Bool(true)));
        assert_eq!(v.get("cache").and_then(Json::as_str), Some("miss"));

        // Warm repeat: same family resolves from the cache.
        let (_, body) = route(&state, &post("/cover/verify", r#"{"n":4}"#));
        let v = Json::parse(body.trim_end()).unwrap();
        assert_eq!(v.get("cache").and_then(Json::as_str), Some("hit"));

        let (status, body) = route(&state, &post("/discrepancy", r#"{"n":4}"#));
        assert_eq!(status, 200, "{body}");
        let v = Json::parse(body.trim_end()).unwrap();
        assert_eq!(v.get("sums_to_gap"), Some(&Json::Bool(true)));

        // n without block structure: 400 from /discrepancy only.
        let (status, _) = route(&state, &post("/discrepancy", r#"{"n":6}"#));
        assert_eq!(status, 400);
        let (status, _) = route(&state, &post("/cover/verify", r#"{"n":6}"#));
        assert_eq!(status, 200);
    }

    #[test]
    fn shutdown_endpoint_flips_the_flag_and_sheds() {
        let state = test_state(8, 1000);
        assert!(!state.shutting_down());
        let (status, body) = route(&state, &post("/shutdown", ""));
        assert_eq!(status, 200);
        assert!(body.contains("draining"));
        assert!(state.shutting_down());
        let (status, body) = route(&state, &post("/cover/verify", r#"{"n":4}"#));
        assert_eq!(status, 503);
        assert!(body.contains("shutting_down"), "{body}");
    }

    #[test]
    fn render_parse_is_stable_json() {
        let o = ParseOutcome {
            member: true,
            parse_count: "12".into(),
            ambiguous: true,
            grammar_hash: 0xabc,
            cache_hit: false,
            cross_checked: Some(true),
        };
        let line = render_parse(&o);
        assert_eq!(
            line,
            "{\"member\":true,\"parse_count\":\"12\",\"ambiguous\":true,\
             \"grammar_hash\":\"0000000000000abc\",\"cache\":\"miss\",\
             \"cross_check\":\"ok\"}\n"
        );
    }
}
