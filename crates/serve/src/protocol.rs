//! Wire protocol: typed requests, error codes, and JSON bodies.
//!
//! Every response body is a single JSON line. Errors carry a stable
//! machine-readable `error` code plus a human `message`:
//!
//! | HTTP | `error` code         | meaning                                     |
//! |------|----------------------|---------------------------------------------|
//! | 400  | `bad_request`        | malformed JSON / unknown field / bad bounds |
//! | 404  | `not_found`          | unknown path                                |
//! | 405  | `method_not_allowed` | known path, wrong verb                      |
//! | 408  | `request_timeout`    | request head/body trickled in too slowly    |
//! | 413  | `payload_too_large`  | body over the `--max-body-bytes` cap        |
//! | 500  | `internal`           | invariant breach (e.g. differential mismatch) |
//! | 503  | `load_shed`          | queue full — retry later                    |
//! | 503  | `shutting_down`      | server is draining                          |
//! | 504  | `deadline_exceeded`  | request overstayed its queue deadline       |

use crate::json::Json;
use ucfg_core::ln_grammars::{appendix_a_grammar, example3_grammar, example4_ucfg};
use ucfg_grammar::text::parse_grammar;
use ucfg_grammar::Grammar;
use ucfg_support::fnv::Fnv1a;

/// Longest word `/parse` accepts; CYK is `O(n³)` per word, so the bound
/// keeps one query from monopolising the pool.
pub const MAX_WORD_LEN: usize = 512;
/// Largest `n` for the exhaustive cover/discrepancy kernels (they walk
/// `2^{2n}` words, and the bitmap layer asserts `2n ≤ 26`).
pub const MAX_COVER_N: usize = 13;
/// Largest `n` for the Proposition 7 extraction family (the Example 4
/// uCFG is `2^Θ(n)`).
pub const MAX_EXTRACTION_N: usize = 6;
/// Largest `n` for the exponential Example 4 builtin.
pub const MAX_EXAMPLE4_N: usize = 10;
/// Largest `n` for the polynomial builtins.
pub const MAX_BUILTIN_N: usize = 128;
/// Largest sliding-window capacity a `/stream/open` may request; the
/// all-starts chart is `O(window²)` items in the worst case.
pub const MAX_STREAM_WINDOW: usize = 1024;
/// Most characters one `/stream/feed` may push (each is one incremental
/// chart extension).
pub const MAX_FEED_CHARS: usize = 4096;
/// Longest regex a `/stream/open` may register.
pub const MAX_REGEX_LEN: usize = 256;
/// Longest session name.
pub const MAX_NAME_LEN: usize = 64;

/// A protocol-level failure, mapped onto HTTP status + error code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiError {
    /// 400 — the request is malformed or out of bounds.
    BadRequest(String),
    /// 404 — no such endpoint.
    NotFound(String),
    /// 405 — endpoint exists, verb is wrong.
    MethodNotAllowed(String),
    /// 408 — the peer trickled the request in past the per-request
    /// deadline (slowloris defence).
    RequestTimeout {
        /// How long the server waited for the complete request, in ms.
        waited_ms: u64,
    },
    /// 413 — the declared body exceeds the configured cap.
    PayloadTooLarge {
        /// The configured `--max-body-bytes` limit.
        limit: usize,
    },
    /// 503 — the batch queue is full; the request was shed, not queued.
    LoadShed {
        /// The configured queue bound that was hit.
        depth: usize,
    },
    /// 503 — the server is draining for shutdown.
    ShuttingDown,
    /// 504 — the request waited longer than the configured deadline.
    DeadlineExceeded {
        /// How long the request sat in the queue, in milliseconds.
        waited_ms: u64,
    },
    /// 500 — an internal invariant failed.
    Internal(String),
}

impl ApiError {
    /// The HTTP status code.
    pub fn status(&self) -> u16 {
        match self {
            ApiError::BadRequest(_) => 400,
            ApiError::NotFound(_) => 404,
            ApiError::MethodNotAllowed(_) => 405,
            ApiError::RequestTimeout { .. } => 408,
            ApiError::PayloadTooLarge { .. } => 413,
            ApiError::LoadShed { .. } | ApiError::ShuttingDown => 503,
            ApiError::DeadlineExceeded { .. } => 504,
            ApiError::Internal(_) => 500,
        }
    }

    /// The stable machine-readable code.
    pub fn code(&self) -> &'static str {
        match self {
            ApiError::BadRequest(_) => "bad_request",
            ApiError::NotFound(_) => "not_found",
            ApiError::MethodNotAllowed(_) => "method_not_allowed",
            ApiError::RequestTimeout { .. } => "request_timeout",
            ApiError::PayloadTooLarge { .. } => "payload_too_large",
            ApiError::LoadShed { .. } => "load_shed",
            ApiError::ShuttingDown => "shutting_down",
            ApiError::DeadlineExceeded { .. } => "deadline_exceeded",
            ApiError::Internal(_) => "internal",
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> String {
        match self {
            ApiError::BadRequest(m) | ApiError::Internal(m) => m.clone(),
            ApiError::NotFound(p) => format!("no such endpoint {p:?}"),
            ApiError::MethodNotAllowed(p) => format!("wrong method for {p:?}"),
            ApiError::RequestTimeout { waited_ms } => {
                format!("request incomplete after {waited_ms} ms; closing")
            }
            ApiError::PayloadTooLarge { limit } => {
                format!("request body exceeds max_body_bytes={limit}")
            }
            ApiError::LoadShed { depth } => {
                format!("queue full (depth {depth}); request shed, retry later")
            }
            ApiError::ShuttingDown => "server is draining".to_string(),
            ApiError::DeadlineExceeded { waited_ms } => {
                format!("request waited {waited_ms} ms in queue, past its deadline")
            }
        }
    }

    /// The single-line JSON body (with trailing newline).
    pub fn body(&self) -> String {
        let mut b = Json::obj(vec![
            ("error", Json::str(self.code())),
            ("message", Json::str(self.message())),
        ])
        .render();
        b.push('\n');
        b
    }
}

/// How `/parse` names its grammar: inline text or a named builtin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrammarSpec {
    /// Inline grammar text in the workspace's `S -> a S | b` format.
    Text(String),
    /// A builtin family from `ucfg_core::ln_grammars` at parameter `n`.
    Builtin {
        /// `appendix-a`, `example3`, or `example4`.
        which: String,
        /// The family parameter.
        n: usize,
    },
}

impl GrammarSpec {
    /// Extract a spec from a request body: either `"grammar": "<text>"`
    /// or `"builtin": "<name>", "n": <int>`.
    pub fn from_json(body: &Json) -> Result<GrammarSpec, ApiError> {
        match (body.get("grammar"), body.get("builtin")) {
            (Some(_), Some(_)) => Err(ApiError::BadRequest(
                "give either \"grammar\" or \"builtin\", not both".into(),
            )),
            (Some(g), None) => {
                let text = g
                    .as_str()
                    .ok_or_else(|| ApiError::BadRequest("\"grammar\" must be a string".into()))?;
                Ok(GrammarSpec::Text(text.to_string()))
            }
            (None, Some(b)) => {
                let which = b
                    .as_str()
                    .ok_or_else(|| ApiError::BadRequest("\"builtin\" must be a string".into()))?;
                let n = body.get("n").and_then(Json::as_usize).ok_or_else(|| {
                    ApiError::BadRequest("builtin needs integer \"n\" ≥ 0".into())
                })?;
                Ok(GrammarSpec::Builtin {
                    which: which.to_string(),
                    n,
                })
            }
            (None, None) => Err(ApiError::BadRequest(
                "missing \"grammar\" (text) or \"builtin\"+\"n\"".into(),
            )),
        }
    }

    /// Materialise the grammar (bounds-checked).
    pub fn build(&self) -> Result<Grammar, ApiError> {
        match self {
            GrammarSpec::Text(src) => parse_grammar(src).map_err(|e| {
                ApiError::BadRequest(format!("grammar text, line {}: {}", e.line, e.msg))
            }),
            GrammarSpec::Builtin { which, n } => {
                let n = *n;
                match which.as_str() {
                    "appendix-a" if (1..=MAX_BUILTIN_N).contains(&n) => Ok(appendix_a_grammar(n)),
                    "example3" if (1..=MAX_BUILTIN_N).contains(&n) => Ok(example3_grammar(n)),
                    "example4" | "ucfg" if (1..=MAX_EXAMPLE4_N).contains(&n) => {
                        Ok(example4_ucfg(n))
                    }
                    "example4" | "ucfg" => Err(ApiError::BadRequest(format!(
                        "example4 is exponential; need 1 ≤ n ≤ {MAX_EXAMPLE4_N}"
                    ))),
                    "appendix-a" | "example3" => Err(ApiError::BadRequest(format!(
                        "need 1 ≤ n ≤ {MAX_BUILTIN_N}"
                    ))),
                    other => Err(ApiError::BadRequest(format!(
                        "unknown builtin {other:?} (appendix-a | example3 | example4)"
                    ))),
                }
            }
        }
    }
}

/// A `/parse` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRequest {
    /// Which grammar.
    pub spec: GrammarSpec,
    /// The word to test.
    pub word: String,
    /// Cross-check CYK membership against Earley on the original
    /// (pre-CNF) grammar.
    pub check: bool,
}

impl ParseRequest {
    /// Parse and bounds-check a `/parse` body.
    pub fn from_json(body: &Json) -> Result<ParseRequest, ApiError> {
        let spec = GrammarSpec::from_json(body)?;
        let word = body
            .get("word")
            .and_then(Json::as_str)
            .ok_or_else(|| ApiError::BadRequest("missing string \"word\"".into()))?;
        if word.chars().count() > MAX_WORD_LEN {
            return Err(ApiError::BadRequest(format!(
                "word longer than {MAX_WORD_LEN} letters"
            )));
        }
        let check = body.get("check").and_then(Json::as_bool).unwrap_or(false);
        Ok(ParseRequest {
            spec,
            word: word.to_string(),
            check,
        })
    }
}

/// The rectangle families the cover/discrepancy endpoints know.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RectFamily {
    /// The Example 8 cover of `L_n` by `n` balanced rectangles.
    Example8,
    /// The Proposition 7 extraction from the Example 4 uCFG.
    Extraction,
}

impl RectFamily {
    /// The wire name.
    pub fn name(&self) -> &'static str {
        match self {
            RectFamily::Example8 => "example8",
            RectFamily::Extraction => "extraction",
        }
    }

    fn from_str(s: &str) -> Result<RectFamily, ApiError> {
        match s {
            "example8" => Ok(RectFamily::Example8),
            "extraction" => Ok(RectFamily::Extraction),
            other => Err(ApiError::BadRequest(format!(
                "unknown family {other:?} (example8 | extraction)"
            ))),
        }
    }
}

/// A `/cover/verify` or `/discrepancy` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RectRequest {
    /// The half-length parameter (`L_n ⊆ {a,b}^{2n}`).
    pub n: usize,
    /// Which rectangle family.
    pub family: RectFamily,
}

impl RectRequest {
    /// Parse and bounds-check a rectangle-family body. `need_blocks`
    /// additionally requires the Section 4 block structure
    /// (`discrepancy` needs `n ≡ 0 mod 4`).
    pub fn from_json(body: &Json, need_blocks: bool) -> Result<RectRequest, ApiError> {
        let n = body
            .get("n")
            .and_then(Json::as_usize)
            .ok_or_else(|| ApiError::BadRequest("missing integer \"n\" ≥ 1".into()))?;
        let family = body
            .get("family")
            .and_then(Json::as_str)
            .map(RectFamily::from_str)
            .transpose()?
            .unwrap_or(RectFamily::Example8);
        if !(1..=MAX_COVER_N).contains(&n) {
            return Err(ApiError::BadRequest(format!(
                "exhaustive kernels need 1 ≤ n ≤ {MAX_COVER_N}"
            )));
        }
        if family == RectFamily::Extraction && n > MAX_EXTRACTION_N {
            return Err(ApiError::BadRequest(format!(
                "extraction family needs n ≤ {MAX_EXTRACTION_N}"
            )));
        }
        if need_blocks && !ucfg_core::discrepancy::supports_blocks(n) {
            return Err(ApiError::BadRequest(
                "discrepancy needs the 4-block structure: n ≥ 4 and n ≡ 0 mod 4".into(),
            ));
        }
        Ok(RectRequest { n, family })
    }

    /// The artifact-cache key for this family.
    pub fn cache_key(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write(b"ucfg-rects-v1")
            .write(self.family.name().as_bytes())
            .write_usize(self.n);
        h.finish()
    }
}

/// A `/stream/open` request: grammar + window capacity + optional regex
/// and name. The session id is a pure function of these, so re-opening
/// with identical parameters addresses (and resets) the same session on
/// the same shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamOpenRequest {
    /// Which grammar the session parses against.
    pub spec: GrammarSpec,
    /// Sliding-window capacity in tokens (1..=`MAX_STREAM_WINDOW`).
    pub window: usize,
    /// Optional regex for the `CFG ∩ regex` product layer.
    pub regex: Option<String>,
    /// Client-chosen tag distinguishing otherwise identical sessions.
    pub name: String,
}

impl StreamOpenRequest {
    /// Parse and bounds-check a `/stream/open` body.
    pub fn from_json(body: &Json) -> Result<StreamOpenRequest, ApiError> {
        let spec = GrammarSpec::from_json(body)?;
        let window = body
            .get("window")
            .and_then(Json::as_usize)
            .ok_or_else(|| ApiError::BadRequest("missing integer \"window\" ≥ 1".into()))?;
        if !(1..=MAX_STREAM_WINDOW).contains(&window) {
            return Err(ApiError::BadRequest(format!(
                "window must be 1..={MAX_STREAM_WINDOW}"
            )));
        }
        let regex = match body.get("regex") {
            None => None,
            Some(r) => {
                let r = r
                    .as_str()
                    .ok_or_else(|| ApiError::BadRequest("\"regex\" must be a string".into()))?;
                if r.chars().count() > MAX_REGEX_LEN {
                    return Err(ApiError::BadRequest(format!(
                        "regex longer than {MAX_REGEX_LEN} characters"
                    )));
                }
                Some(r.to_string())
            }
        };
        let name = match body.get("name") {
            None => String::new(),
            Some(n) => {
                let n = n
                    .as_str()
                    .ok_or_else(|| ApiError::BadRequest("\"name\" must be a string".into()))?;
                if n.chars().count() > MAX_NAME_LEN {
                    return Err(ApiError::BadRequest(format!(
                        "name longer than {MAX_NAME_LEN} characters"
                    )));
                }
                n.to_string()
            }
        };
        Ok(StreamOpenRequest {
            spec,
            window,
            regex,
            name,
        })
    }
}

/// Pull the `"session"` field (16 hex digits, as `/stream/open` returns
/// it) out of a stream request body.
pub fn session_from_json(body: &Json) -> Result<u64, ApiError> {
    let s = body
        .get("session")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::BadRequest("missing string \"session\"".into()))?;
    u64::from_str_radix(s, 16)
        .map_err(|_| ApiError::BadRequest("\"session\" must be 16 hex digits".into()))
}

/// A `/stream/feed` request: either new tokens or a truncate position,
/// never both.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamFeedRequest {
    /// Append `text` (every character must be in the grammar alphabet).
    Tokens {
        /// The session to feed.
        session: u64,
        /// The characters to append.
        text: String,
    },
    /// Rewind the stream to absolute position `to`.
    Truncate {
        /// The session to rewind.
        session: u64,
        /// The absolute position to rewind to.
        to: u64,
    },
}

impl StreamFeedRequest {
    /// Parse and bounds-check a `/stream/feed` body.
    pub fn from_json(body: &Json) -> Result<StreamFeedRequest, ApiError> {
        let session = session_from_json(body)?;
        match (body.get("tokens"), body.get("truncate")) {
            (Some(_), Some(_)) => Err(ApiError::BadRequest(
                "give either \"tokens\" or \"truncate\", not both".into(),
            )),
            (Some(t), None) => {
                let text = t
                    .as_str()
                    .ok_or_else(|| ApiError::BadRequest("\"tokens\" must be a string".into()))?;
                if text.chars().count() > MAX_FEED_CHARS {
                    return Err(ApiError::BadRequest(format!(
                        "feed longer than {MAX_FEED_CHARS} characters; chunk it"
                    )));
                }
                Ok(StreamFeedRequest::Tokens {
                    session,
                    text: text.to_string(),
                })
            }
            (None, Some(to)) => {
                let to = to.as_usize().ok_or_else(|| {
                    ApiError::BadRequest("\"truncate\" must be an integer ≥ 0".into())
                })?;
                Ok(StreamFeedRequest::Truncate {
                    session,
                    to: to as u64,
                })
            }
            (None, None) => Err(ApiError::BadRequest(
                "missing \"tokens\" (string) or \"truncate\" (position)".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(src: &str) -> Json {
        Json::parse(src).unwrap()
    }

    #[test]
    fn parse_request_text_form() {
        let r =
            ParseRequest::from_json(&body(r#"{"grammar":"S -> a S | b","word":"aab"}"#)).unwrap();
        assert_eq!(r.spec, GrammarSpec::Text("S -> a S | b".into()));
        assert_eq!(r.word, "aab");
        assert!(!r.check);
        assert!(r.spec.build().is_ok());
    }

    #[test]
    fn parse_request_builtin_form() {
        let r = ParseRequest::from_json(&body(
            r#"{"builtin":"example4","n":3,"word":"ab","check":true}"#,
        ))
        .unwrap();
        assert!(matches!(r.spec, GrammarSpec::Builtin { ref which, n: 3 } if which == "example4"));
        assert!(r.check);
        assert!(r.spec.build().is_ok());
    }

    #[test]
    fn parse_request_rejections() {
        for (src, want) in [
            (r#"{"word":"a"}"#, "missing \"grammar\""),
            (
                r#"{"grammar":"S -> a","builtin":"example3","n":1,"word":"a"}"#,
                "not both",
            ),
            (r#"{"grammar":7,"word":"a"}"#, "must be a string"),
            (r#"{"grammar":"S -> a"}"#, "missing string \"word\""),
            (r#"{"builtin":"example4","word":"a"}"#, "integer \"n\""),
            (r#"{"builtin":"nope","n":1,"word":"a"}"#, ""),
        ] {
            let err = match ParseRequest::from_json(&body(src)) {
                Err(e) => e,
                Ok(r) => match r.spec.build() {
                    Err(e) => e,
                    Ok(_) => panic!("accepted {src}"),
                },
            };
            assert_eq!(err.status(), 400, "{src}");
            assert!(err.message().contains(want), "{src}: {}", err.message());
        }
    }

    #[test]
    fn builtin_bounds_are_hard() {
        for src in [
            r#"{"builtin":"example4","n":11,"word":"a"}"#,
            r#"{"builtin":"example3","n":0,"word":"a"}"#,
            r#"{"builtin":"appendix-a","n":129,"word":"a"}"#,
        ] {
            let r = ParseRequest::from_json(&body(src)).unwrap();
            assert!(r.spec.build().is_err(), "{src}");
        }
    }

    #[test]
    fn oversized_word_is_rejected() {
        let w = "a".repeat(MAX_WORD_LEN + 1);
        let src = format!(r#"{{"grammar":"S -> a","word":"{w}"}}"#);
        assert!(ParseRequest::from_json(&body(&src)).is_err());
    }

    #[test]
    fn rect_request_bounds() {
        let r = RectRequest::from_json(&body(r#"{"n":4,"family":"example8"}"#), false).unwrap();
        assert_eq!(r.n, 4);
        assert_eq!(r.family, RectFamily::Example8);

        // Default family is example8.
        let r = RectRequest::from_json(&body(r#"{"n":3}"#), false).unwrap();
        assert_eq!(r.family, RectFamily::Example8);

        assert!(RectRequest::from_json(&body(r#"{"n":14}"#), false).is_err());
        assert!(RectRequest::from_json(&body(r#"{"n":0}"#), false).is_err());
        assert!(RectRequest::from_json(&body(r#"{"n":7,"family":"extraction"}"#), false).is_err());
        assert!(RectRequest::from_json(&body(r#"{"n":1,"family":"x"}"#), false).is_err());
        // Blocks requirement: n = 6 verifies but has no 4-block structure.
        assert!(RectRequest::from_json(&body(r#"{"n":6}"#), false).is_ok());
        assert!(RectRequest::from_json(&body(r#"{"n":6}"#), true).is_err());
        assert!(RectRequest::from_json(&body(r#"{"n":8}"#), true).is_ok());
    }

    #[test]
    fn rect_cache_keys_separate_families_and_sizes() {
        let k = |src: &str| {
            RectRequest::from_json(&body(src), false)
                .unwrap()
                .cache_key()
        };
        let a = k(r#"{"n":4,"family":"example8"}"#);
        let b = k(r#"{"n":5,"family":"example8"}"#);
        let c = k(r#"{"n":4,"family":"extraction"}"#);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, k(r#"{"n":4}"#));
    }

    #[test]
    fn stream_open_request_bounds() {
        let r = StreamOpenRequest::from_json(&body(
            r#"{"grammar":"S -> a S | b","window":8,"regex":"a*b","name":"t"}"#,
        ))
        .unwrap();
        assert_eq!(r.window, 8);
        assert_eq!(r.regex.as_deref(), Some("a*b"));
        assert_eq!(r.name, "t");

        // regex and name are optional.
        let r = StreamOpenRequest::from_json(&body(r#"{"grammar":"S -> a","window":1}"#)).unwrap();
        assert_eq!(r.regex, None);
        assert_eq!(r.name, "");

        for src in [
            r#"{"grammar":"S -> a"}"#,
            r#"{"grammar":"S -> a","window":0}"#,
            r#"{"grammar":"S -> a","window":1025}"#,
            r#"{"window":4}"#,
            r#"{"grammar":"S -> a","window":4,"regex":7}"#,
        ] {
            let e = StreamOpenRequest::from_json(&body(src)).unwrap_err();
            assert_eq!(e.status(), 400, "{src}");
        }
        let long = format!(
            r#"{{"grammar":"S -> a","window":4,"regex":"{}"}}"#,
            "a".repeat(MAX_REGEX_LEN + 1)
        );
        assert!(StreamOpenRequest::from_json(&body(&long)).is_err());
    }

    #[test]
    fn stream_feed_request_forms() {
        let r = StreamFeedRequest::from_json(&body(
            r#"{"session":"00000000000000ab","tokens":"abab"}"#,
        ))
        .unwrap();
        assert_eq!(
            r,
            StreamFeedRequest::Tokens {
                session: 0xab,
                text: "abab".into()
            }
        );
        let r =
            StreamFeedRequest::from_json(&body(r#"{"session":"ffffffffffffffff","truncate":3}"#))
                .unwrap();
        assert_eq!(
            r,
            StreamFeedRequest::Truncate {
                session: u64::MAX,
                to: 3
            }
        );
        for src in [
            r#"{"tokens":"ab"}"#,
            r#"{"session":"xyz","tokens":"ab"}"#,
            r#"{"session":"0","tokens":"ab","truncate":1}"#,
            r#"{"session":"0"}"#,
        ] {
            let e = StreamFeedRequest::from_json(&body(src)).unwrap_err();
            assert_eq!(e.status(), 400, "{src}");
        }
        let long = format!(
            r#"{{"session":"0","tokens":"{}"}}"#,
            "a".repeat(MAX_FEED_CHARS + 1)
        );
        assert!(StreamFeedRequest::from_json(&body(&long)).is_err());
    }

    #[test]
    fn error_bodies_are_single_json_lines() {
        let errors = [
            ApiError::BadRequest("x".into()),
            ApiError::NotFound("/nope".into()),
            ApiError::MethodNotAllowed("/parse".into()),
            ApiError::RequestTimeout { waited_ms: 250 },
            ApiError::PayloadTooLarge { limit: 4 << 20 },
            ApiError::LoadShed { depth: 8 },
            ApiError::ShuttingDown,
            ApiError::DeadlineExceeded { waited_ms: 12 },
            ApiError::Internal("y".into()),
        ];
        for e in errors {
            let b = e.body();
            assert!(b.ends_with('\n'));
            assert_eq!(b.trim_end().lines().count(), 1);
            let v = Json::parse(b.trim_end()).unwrap();
            assert_eq!(v.get("error").and_then(Json::as_str), Some(e.code()));
            assert!(e.status() >= 400);
        }
    }
}
