//! The content-addressed artifact cache.
//!
//! Keys are stable FNV-1a digests ([`Grammar::content_hash`] for
//! grammars, [`crate::protocol::RectRequest::cache_key`] for rectangle
//! families); values are the expensive compiled artifacts a one-shot
//! binary rebuilds on every run:
//!
//! - [`GrammarArtifact`] — the parsed [`Grammar`], its CNF conversion,
//!   the flat-slab [`CykRuleIndex`], and the Earley nullable table;
//! - [`RectsArtifact`] — a materialised rectangle family for the
//!   cover/discrepancy kernels.
//!
//! (The canonical `L_n` bitmaps have their own process-wide cache in
//! `ucfg_core::wordset`; the kernels hit it automatically and its
//! traffic shows up under the `wordset.cache.*` counters.)
//!
//! Eviction is LRU under a fixed entry capacity. Instrumentation:
//! `serve.cache.hits` / `serve.cache.misses` / `serve.cache.evictions`
//! deterministic counters, plus volatile per-shard
//! `serve.shard.<i>.cache.{hits,misses,evictions}` counters when the
//! cache is one shard of a [`crate::shard::ShardSet`] (volatile
//! because shard layout depends on `--shards`, which must not perturb
//! the deterministic metrics stratum).

use crate::protocol::{ApiError, RectFamily, RectRequest};
use std::collections::HashMap;
use std::sync::Arc;
use ucfg_core::cover::extraction_to_set_rectangles;
use ucfg_core::extract::extract_cover;
use ucfg_core::ln_grammars::example4_ucfg;
use ucfg_core::SetRectangle;
use ucfg_grammar::analysis::nullable;
use ucfg_grammar::cyk::CykRuleIndex;
use ucfg_grammar::earley::Earley;
use ucfg_grammar::{CnfGrammar, Grammar};
use ucfg_support::obs;

/// Everything `/parse` needs, compiled once per distinct grammar hash.
#[derive(Debug)]
pub struct GrammarArtifact {
    /// The grammar's [`Grammar::content_hash`].
    pub hash: u64,
    /// The original grammar (Earley runs on this — it handles non-CNF
    /// bodies directly).
    pub grammar: Grammar,
    /// The Earley table: the nullable fixpoint, precomputed.
    pub nullable: Vec<bool>,
    /// The Chomsky normal form the CYK chart parses with.
    pub cnf: CnfGrammar,
    /// The flat-slab bitset rule index shared by every chart.
    pub index: CykRuleIndex,
}

impl GrammarArtifact {
    /// Compile the full artifact set for `grammar`.
    pub fn compile(grammar: Grammar) -> Arc<GrammarArtifact> {
        let _t = obs::span!("serve.compile.grammar");
        let hash = grammar.content_hash();
        let nullable = nullable(&grammar);
        let cnf = CnfGrammar::from_grammar(&grammar);
        let index = CykRuleIndex::new(&cnf);
        Arc::new(GrammarArtifact {
            hash,
            grammar,
            nullable,
            cnf,
            index,
        })
    }

    /// An Earley recogniser borrowing this artifact's grammar and
    /// precomputed table.
    pub fn earley(&self) -> Earley<'_> {
        Earley::with_nullable(&self.grammar, self.nullable.clone())
    }
}

/// A materialised rectangle family.
#[derive(Debug)]
pub struct RectsArtifact {
    /// The half-length parameter.
    pub n: usize,
    /// The rectangles.
    pub rects: Vec<SetRectangle>,
}

impl RectsArtifact {
    /// Build the family for a bounds-checked [`RectRequest`].
    pub fn build(req: RectRequest) -> Result<Arc<RectsArtifact>, ApiError> {
        let _t = obs::span!("serve.compile.rects");
        let rects = match req.family {
            RectFamily::Example8 => ucfg_core::cover::example8_cover(req.n),
            RectFamily::Extraction => {
                let cnf = CnfGrammar::from_grammar(&example4_ucfg(req.n));
                let res = extract_cover(&cnf, 2 * req.n)
                    .map_err(|e| ApiError::Internal(format!("extraction failed: {e:?}")))?;
                extraction_to_set_rectangles(req.n, &res)
            }
        };
        Ok(Arc::new(RectsArtifact { n: req.n, rects }))
    }
}

/// A cached artifact (cheap to clone — contents are behind `Arc`s).
#[derive(Debug, Clone)]
pub enum Artifact {
    /// A compiled grammar.
    Grammar(Arc<GrammarArtifact>),
    /// A rectangle family.
    Rects(Arc<RectsArtifact>),
}

impl Artifact {
    /// The grammar artifact, if that's what this is.
    pub fn as_grammar(&self) -> Option<&Arc<GrammarArtifact>> {
        match self {
            Artifact::Grammar(g) => Some(g),
            _ => None,
        }
    }

    /// The rectangle family, if that's what this is.
    pub fn as_rects(&self) -> Option<&Arc<RectsArtifact>> {
        match self {
            Artifact::Rects(r) => Some(r),
            _ => None,
        }
    }
}

struct Entry {
    value: Artifact,
    last_used: u64,
}

/// An LRU map from content hash to compiled [`Artifact`].
pub struct ArtifactCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<u64, Entry>,
    /// `Some(i)` when this cache is shard `i` of a sharded server —
    /// adds volatile per-shard hit/miss/eviction counters.
    shard: Option<usize>,
}

impl ArtifactCache {
    /// A cache holding at most `capacity` artifacts (min 1).
    pub fn new(capacity: usize) -> ArtifactCache {
        ArtifactCache {
            capacity: capacity.max(1),
            tick: 0,
            entries: HashMap::new(),
            shard: None,
        }
    }

    /// A cache acting as shard `shard_idx`: identical behaviour, plus
    /// volatile `serve.shard.<i>.cache.*` counters so the shard spread
    /// is observable without touching the deterministic stratum.
    pub fn with_shard(capacity: usize, shard_idx: usize) -> ArtifactCache {
        ArtifactCache {
            shard: Some(shard_idx),
            ..ArtifactCache::new(capacity)
        }
    }

    /// Bump this shard's volatile counter for `event` (hit/miss/…).
    fn shard_count(&self, event: &str) {
        if let Some(i) = self.shard {
            if obs::enabled() {
                obs::vcounter(&format!("serve.shard.{i}.cache.{event}")).add(1);
            }
        }
    }

    /// Current number of cached artifacts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fetch `key`, or build, insert, and (if over capacity) evict the
    /// least-recently-used entry. Returns the artifact and whether it
    /// was a hit. `build` may fail (e.g. extraction bounds); failures
    /// are not cached.
    pub fn get_or_insert_with(
        &mut self,
        key: u64,
        build: impl FnOnce() -> Result<Artifact, ApiError>,
    ) -> Result<(Artifact, bool), ApiError> {
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(&key) {
            e.last_used = self.tick;
            let value = e.value.clone();
            obs::count!("serve.cache.hits");
            self.shard_count("hits");
            return Ok((value, true));
        }
        obs::count!("serve.cache.misses");
        self.shard_count("misses");
        let value = build()?;
        self.entries.insert(
            key,
            Entry {
                value: value.clone(),
                last_used: self.tick,
            },
        );
        while self.entries.len() > self.capacity {
            if let Some((&lru, _)) = self
                .entries
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.last_used)
            {
                self.entries.remove(&lru);
                obs::count!("serve.cache.evictions");
                self.shard_count("evictions");
            } else {
                break;
            }
        }
        Ok((value, false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn grammar_artifact(src: &str) -> Artifact {
        let g = ucfg_grammar::text::parse_grammar(src).unwrap();
        Artifact::Grammar(GrammarArtifact::compile(g))
    }

    #[test]
    fn compile_produces_consistent_pieces() {
        let g = ucfg_grammar::text::parse_grammar("S -> a S b S | ()").unwrap();
        let art = GrammarArtifact::compile(g);
        assert_eq!(art.hash, art.grammar.content_hash());
        // Dyck word: both engines agree through the artifact's parts.
        let e = art.earley();
        assert!(e.recognize_str("aabb"));
        let w = art.cnf.encode("aabb").unwrap();
        let chart = ucfg_grammar::cyk::CykChart::build_with_index(&art.cnf, &art.index, &w);
        assert!(chart.accepted());
    }

    #[test]
    fn hit_then_miss_accounting() {
        let mut c = ArtifactCache::new(4);
        let (a1, hit1) = c
            .get_or_insert_with(1, || Ok(grammar_artifact("S -> a")))
            .unwrap();
        assert!(!hit1);
        let (a2, hit2) = c
            .get_or_insert_with(1, || panic!("must not rebuild"))
            .unwrap();
        assert!(hit2);
        // Same Arc, not a recompile.
        assert!(Arc::ptr_eq(
            a1.as_grammar().unwrap(),
            a2.as_grammar().unwrap()
        ));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut c = ArtifactCache::new(2);
        c.get_or_insert_with(1, || Ok(grammar_artifact("S -> a")))
            .unwrap();
        c.get_or_insert_with(2, || Ok(grammar_artifact("S -> b")))
            .unwrap();
        // Touch 1 so 2 is the LRU.
        c.get_or_insert_with(1, || panic!("hit expected")).unwrap();
        c.get_or_insert_with(3, || Ok(grammar_artifact("S -> a b")))
            .unwrap();
        assert_eq!(c.len(), 2);
        let (_, hit1) = c.get_or_insert_with(1, || panic!("1 evicted")).unwrap();
        assert!(hit1);
        let (_, hit2) = c
            .get_or_insert_with(2, || Ok(grammar_artifact("S -> b")))
            .unwrap();
        assert!(!hit2, "2 should have been evicted");
    }

    #[test]
    fn failed_builds_are_not_cached() {
        let mut c = ArtifactCache::new(2);
        let r = c.get_or_insert_with(9, || Err(ApiError::BadRequest("no".into())));
        assert!(r.is_err());
        assert_eq!(c.len(), 0);
        // A later successful build under the same key works.
        let (_, hit) = c
            .get_or_insert_with(9, || Ok(grammar_artifact("S -> a")))
            .unwrap();
        assert!(!hit);
    }

    #[test]
    fn capacity_one_still_serves() {
        let mut c = ArtifactCache::new(0); // clamped to 1
        c.get_or_insert_with(1, || Ok(grammar_artifact("S -> a")))
            .unwrap();
        c.get_or_insert_with(2, || Ok(grammar_artifact("S -> b")))
            .unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn rects_artifacts_build_for_both_families() {
        let req = |src: &str| RectRequest::from_json(&Json::parse(src).unwrap(), false).unwrap();
        let e8 = RectsArtifact::build(req(r#"{"n":4,"family":"example8"}"#)).unwrap();
        assert_eq!(e8.rects.len(), 4);
        let ex = RectsArtifact::build(req(r#"{"n":3,"family":"extraction"}"#)).unwrap();
        assert!(!ex.rects.is_empty());
        assert_eq!(ex.n, 3);
    }
}
