//! A minimal blocking HTTP/1.1 client for the serve protocol.
//!
//! Used by `ucfg query` (and CI) to drive a running daemon: one
//! keep-alive connection, sequential request/response. Connection setup
//! retries for a bounded window so scripts can race server startup.
//!
//! The read timeout is configurable ([`Client::connect_with`] /
//! `ucfg query --timeout-ms`) and defaults to
//! [`DEFAULT_READ_TIMEOUT`], so a wedged daemon fails the script fast
//! instead of stalling it for minutes.

use std::io::{self, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// How long a response read may stall before the client gives up.
/// Generous against the server's own 10 s queue deadline, far below
/// the minutes a hung connection used to cost.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// A keep-alive connection to a serve daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// One response: status code and body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The body, verbatim (single JSON line for API endpoints).
    pub body: String,
}

impl Client {
    /// Connect once with [`DEFAULT_READ_TIMEOUT`].
    pub fn connect(addr: &str) -> io::Result<Client> {
        Client::connect_with(addr, Some(DEFAULT_READ_TIMEOUT))
    }

    /// Connect once with an explicit read timeout (`None` blocks
    /// forever — only sensible for interactive experiments).
    pub fn connect_with(addr: &str, read_timeout: Option<Duration>) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // A stuck server should fail the script, not hang it.
        stream.set_read_timeout(read_timeout)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Connect, retrying on `ECONNREFUSED`-style failures until
    /// `within` elapses — covers the window between spawning the server
    /// process and its `bind`. Uses [`DEFAULT_READ_TIMEOUT`].
    pub fn connect_retry(addr: &str, within: Duration) -> io::Result<Client> {
        Client::connect_retry_with(addr, within, Some(DEFAULT_READ_TIMEOUT))
    }

    /// [`Client::connect_retry`] with an explicit read timeout.
    pub fn connect_retry_with(
        addr: &str,
        within: Duration,
        read_timeout: Option<Duration>,
    ) -> io::Result<Client> {
        let start = Instant::now();
        loop {
            match Client::connect_with(addr, read_timeout) {
                Ok(c) => return Ok(c),
                Err(e) if start.elapsed() < within => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Send one request and read its response. `body = None` sends a
    /// bodyless request (GET-style).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<Response> {
        let payload = body.unwrap_or("");
        write!(
            self.writer,
            "{} {} HTTP/1.1\r\nHost: ucfg-serve\r\nContent-Length: {}\r\n\r\n",
            method,
            path,
            payload.len()
        )?;
        self.writer.write_all(payload.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let status_line = self.read_line()?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let mut content_length = 0usize;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 body"))?;
        Ok(Response { status, body })
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut buf = Vec::new();
        loop {
            let mut byte = [0u8; 1];
            match self.reader.read(&mut byte)? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "eof in response head",
                    ))
                }
                _ => {
                    if byte[0] == b'\n' {
                        if buf.last() == Some(&b'\r') {
                            buf.pop();
                        }
                        return String::from_utf8(buf).map_err(|_| {
                            io::Error::new(io::ErrorKind::InvalidData, "non-utf8 header")
                        });
                    }
                    buf.push(byte[0]);
                }
            }
        }
    }
}

// The client is exercised end-to-end against a real server in
// `tests/serve_e2e.rs`; pure parsing paths are covered there too.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_retry_gives_up_with_the_underlying_error() {
        // Port 1 on loopback is essentially never listening.
        let err = Client::connect_retry("127.0.0.1:1", Duration::from_millis(120)).unwrap_err();
        // Any error kind is fine — the point is it returns, bounded.
        let _ = err;
    }

    #[test]
    fn read_timeout_cuts_off_a_wedged_server() {
        use std::net::TcpListener;

        // A listener that accepts and then never writes a byte.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));

        let mut client = Client::connect_with(&addr, Some(Duration::from_millis(100))).unwrap();
        let start = Instant::now();
        let err = client.request("GET", "/healthz", None).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "{err:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "timeout must fire promptly, took {:?}",
            start.elapsed()
        );
        drop(hold.join().unwrap());
    }
}
