//! A minimal blocking HTTP/1.1 client for the serve protocol.
//!
//! Used by `ucfg query` (and CI) to drive a running daemon: one
//! keep-alive connection, sequential request/response. Connection setup
//! retries for a bounded window so scripts can race server startup.

use std::io::{self, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A keep-alive connection to a serve daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// One response: status code and body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The body, verbatim (single JSON line for API endpoints).
    pub body: String,
}

impl Client {
    /// Connect once.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // A stuck server should fail the script, not hang it.
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Connect, retrying on `ECONNREFUSED`-style failures until
    /// `within` elapses — covers the window between spawning the server
    /// process and its `bind`.
    pub fn connect_retry(addr: &str, within: Duration) -> io::Result<Client> {
        let start = Instant::now();
        loop {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if start.elapsed() < within => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Send one request and read its response. `body = None` sends a
    /// bodyless request (GET-style).
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<Response> {
        let payload = body.unwrap_or("");
        write!(
            self.writer,
            "{} {} HTTP/1.1\r\nHost: ucfg-serve\r\nContent-Length: {}\r\n\r\n",
            method,
            path,
            payload.len()
        )?;
        self.writer.write_all(payload.as_bytes())?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<Response> {
        let status_line = self.read_line()?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let mut content_length = 0usize;
        loop {
            let line = self.read_line()?;
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 body"))?;
        Ok(Response { status, body })
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut buf = Vec::new();
        loop {
            let mut byte = [0u8; 1];
            match self.reader.read(&mut byte)? {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "eof in response head",
                    ))
                }
                _ => {
                    if byte[0] == b'\n' {
                        if buf.last() == Some(&b'\r') {
                            buf.pop();
                        }
                        return String::from_utf8(buf).map_err(|_| {
                            io::Error::new(io::ErrorKind::InvalidData, "non-utf8 header")
                        });
                    }
                    buf.push(byte[0]);
                }
            }
        }
    }
}

// The client is exercised end-to-end against a real server in
// `tests/serve_e2e.rs`; pure parsing paths are covered there too.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_retry_gives_up_with_the_underlying_error() {
        // Port 1 on loopback is essentially never listening.
        let err = Client::connect_retry("127.0.0.1:1", Duration::from_millis(120)).unwrap_err();
        // Any error kind is fine — the point is it returns, bounded.
        let _ = err;
    }
}
