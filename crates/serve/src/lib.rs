//! # ucfg-serve — the resident query daemon
//!
//! A long-running TCP service over the workspace's kernels, closing the
//! gap between the one-shot binaries (`ucfg`, `report`, `sweep`) and
//! the ROADMAP's production-serving north star. Hermetic like the rest
//! of the workspace: `std::net` TCP, a hand-rolled HTTP/1.1 subset
//! ([`http`]), and a hand-rolled JSON value ([`json`]) — no external
//! crates.
//!
//! The serving layer is four pieces:
//!
//! * [`cache`] — a content-addressed **artifact cache**: FNV-1a content
//!   hashes (`Grammar::content_hash`, rectangle-family keys) address an
//!   LRU of compiled artifacts — CNF conversions, flat-slab
//!   `CykRuleIndex`es, Earley nullable tables, rectangle families — so
//!   repeat queries skip compilation entirely;
//! * [`batch`] — a **batching scheduler**: queued `/parse` requests are
//!   drained together, grouped by grammar hash, and run as one batch on
//!   the deterministic `ucfg_support::par` pool, with a bounded queue
//!   (full ⇒ `503 load_shed`, never blocking) and a per-request
//!   deadline (`504 deadline_exceeded`);
//! * [`shard`] — **worker shards**: `--shards` independent
//!   cache + scheduler pairs, jobs routed by rendezvous hashing of the
//!   content hash so a grammar's artifact compiles on exactly one
//!   shard;
//! * [`server`] — a nonblocking **epoll event loop**
//!   (`ucfg_support::evloop`): edge-triggered readiness, incremental
//!   request assembly ([`http::Assembler`]), accept backpressure at the
//!   connection budget, per-request timeouts (`408`), body caps
//!   (`413`), and **graceful shutdown** — SIGTERM / ctrl-c /
//!   `POST /shutdown` stop the accept loop, let in-flight requests
//!   finish, and drain the shard schedulers before exit.
//!
//! ## Endpoints
//!
//! | method | path | body |
//! |---|---|---|
//! | POST | `/parse` | `{"grammar": "S -> a S \| b", "word": "aab"}` or `{"builtin": "example4", "n": 3, "word": "…"}`, optional `"check": true` |
//! | POST | `/cover/verify` | `{"n": 4, "family": "example8" \| "extraction"}` |
//! | POST | `/discrepancy` | `{"n": 4, "family": …}` (needs `n ≡ 0 mod 4`) |
//! | POST | `/stream/open` | grammar spec + `{"window": 64, "regex": "a(a\|b)*b", "name": "tag"}` → deterministic session id |
//! | POST | `/stream/feed` | `{"session": "<16 hex>", "tokens": "aabb"}` or `{"session": …, "truncate": 5}` |
//! | POST | `/stream/query` | `{"session": "<16 hex>"}` → window, membership, counts, product matches |
//! | POST | `/stream/close` | `{"session": "<16 hex>"}` |
//! | POST | `/shutdown` | — |
//! | GET | `/healthz` | — |
//! | GET | `/metrics`, `/metrics/deterministic` | — |
//!
//! Streaming sessions (incremental Earley plus sliding-window
//! membership plus `CFG ∩ regex` product queries, from `ucfg_stream`)
//! live on the
//! shard that owns their **deterministic session id** — a pure FNV
//! hash of (grammar hash, window, regex, name) — so re-opening the
//! same parameters lands on the same session from any client, and
//! responses are byte-identical across thread counts and shard
//! layouts.
//!
//! Responses are JSON lines; error codes are tabulated in [`protocol`].
//! All instruments live under `serve.*` in the `ucfg_support::obs`
//! registry, deterministic counters/gauges split from volatile batch
//! statistics and timings as everywhere else in the workspace.
//!
//! ## Example
//!
//! ```
//! use ucfg_serve::{Client, ServeConfig, Server};
//! use std::time::Duration;
//!
//! let server = Server::bind(ServeConfig {
//!     port: 0, // ephemeral
//!     ..ServeConfig::default()
//! })
//! .unwrap();
//! let addr = server.local_addr().unwrap().to_string();
//! let handle = server.handle();
//! let daemon = std::thread::spawn(move || server.run().unwrap());
//!
//! let mut client = Client::connect_retry(&addr, Duration::from_secs(5)).unwrap();
//! let r = client
//!     .request("POST", "/parse", Some(r#"{"grammar":"S -> a S | b","word":"aab"}"#))
//!     .unwrap();
//! assert_eq!(r.status, 200);
//! assert!(r.body.contains("\"member\":true"));
//!
//! handle.shutdown();
//! let summary = daemon.join().unwrap();
//! assert!(summary.requests >= 1);
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod client;
pub mod http;
pub mod json;
pub mod protocol;
pub mod server;
pub mod shard;

pub use client::{Client, Response};
pub use json::Json;
pub use protocol::ApiError;
pub use server::{ServeConfig, ServeSummary, Server, ServerHandle};
