//! Streaming endpoints and write-coalescing over the live wire.
//!
//! Two concerns share this file because both need a real event loop:
//!
//! * the `/stream/*` session lifecycle (open → feed → query → close)
//!   exercised end to end through sockets, including the idempotent
//!   re-open and the unknown-session error path;
//! * the response coalescer — a burst of pipelined requests arriving
//!   in one segment must leave in one `write(2)`, pinned by the
//!   syscall-visible `flush_writes` gauge in `/healthz`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;
use ucfg_serve::{Client, Json, ServeConfig, Server};

fn start(
    cfg: ServeConfig,
) -> (
    String,
    ucfg_serve::ServerHandle,
    std::thread::JoinHandle<ucfg_serve::ServeSummary>,
) {
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("run"));
    (addr, handle, join)
}

fn healthz_gauge(addr: &str, field: &str) -> i64 {
    let mut probe = Client::connect_retry(addr, Duration::from_secs(5)).expect("probe connect");
    let r = probe.request("GET", "/healthz", None).expect("healthz");
    assert_eq!(r.status, 200);
    Json::parse(r.body.trim_end())
        .unwrap()
        .get(field)
        .and_then(|v| match v {
            Json::Int(i) => Some(*i),
            _ => None,
        })
        .unwrap_or_else(|| panic!("missing {field} in healthz"))
}

#[test]
fn stream_session_lifecycle_over_the_wire() {
    let (addr, handle, join) = start(ServeConfig {
        port: 0,
        shards: 2,
        ..ServeConfig::default()
    });
    let mut c = Client::connect_retry(&addr, Duration::from_secs(5)).expect("connect");

    let open = r#"{"grammar":"S -> a S b | a b","window":8,"regex":"a(a|b)*b","name":"wire"}"#;
    let r = c.request("POST", "/stream/open", Some(open)).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    let v = Json::parse(r.body.trim_end()).unwrap();
    let session = v.get("session").and_then(Json::as_str).unwrap().to_string();
    assert_eq!(v.get("product_nonempty"), Some(&Json::Bool(true)));

    // Same parameters, same deterministic id — byte-identical body.
    let again = c.request("POST", "/stream/open", Some(open)).unwrap();
    assert_eq!(again.body, r.body);

    let feed = format!(r#"{{"session":"{session}","tokens":"aabb"}}"#);
    let r = c.request("POST", "/stream/feed", Some(&feed)).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    let v = Json::parse(r.body.trim_end()).unwrap();
    assert_eq!(v.get("member"), Some(&Json::Bool(true)));

    assert_eq!(healthz_gauge(&addr, "stream_sessions"), 1);

    let q = format!(r#"{{"session":"{session}"}}"#);
    let r = c.request("POST", "/stream/query", Some(&q)).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    let v = Json::parse(r.body.trim_end()).unwrap();
    assert_eq!(v.get("window").and_then(Json::as_str), Some("aabb"));
    assert_eq!(v.get("count").and_then(Json::as_str), Some("1"));

    let r = c.request("POST", "/stream/close", Some(&q)).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(healthz_gauge(&addr, "stream_sessions"), 0);

    let r = c.request("POST", "/stream/query", Some(&q)).unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body.contains("no such session"), "{}", r.body);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn pipelined_responses_coalesce_into_one_write() {
    let (addr, handle, join) = start(ServeConfig {
        port: 0,
        ..ServeConfig::default()
    });
    // Settle the accept path, then sample the write counter.
    let before = healthz_gauge(&addr, "flush_writes");

    // Eight pipelined requests in a single segment. The event loop
    // reads them in one wakeup, renders eight responses, and must
    // flush them with one write, not eight.
    let mut s = TcpStream::connect(&addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let burst = "GET /healthz HTTP/1.1\r\n\r\n".repeat(7)
        + "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
    s.write_all(burst.as_bytes()).unwrap();
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8_lossy(&buf);
    assert_eq!(
        text.matches("HTTP/1.1 200").count(),
        8,
        "expected 8 pipelined responses"
    );

    let after = healthz_gauge(&addr, "flush_writes");
    // Delta covers: the `before` probe's own response write, the burst
    // flushes, and nothing else. Uncoalesced the burst alone costs 8
    // writes (delta ≥ 9); coalesced it is 1-2 even if the kernel
    // splits the inbound segment.
    let delta = after - before;
    assert!(
        delta <= 4,
        "pipelined burst took {delta} writes; responses are not coalescing"
    );

    handle.shutdown();
    join.join().unwrap();
}
