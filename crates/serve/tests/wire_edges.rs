//! Malformed-wire edge cases against the live event loop, over raw
//! sockets.
//!
//! Every scenario abuses one connection and then proves the server
//! neither wedged nor leaked the slot: a clean probe still answers,
//! and `/healthz`'s live-connection gauge drains back down. Covered:
//! requests split at every byte boundary, duplicate and conflicting
//! `Content-Length` headers, oversized request lines, declared bodies
//! over the cap (413), abrupt mid-body disconnects, and a slowloris
//! trickle cut off by the request deadline (408).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use ucfg_serve::{Client, Json, ServeConfig, Server};

fn start(
    cfg: ServeConfig,
) -> (
    String,
    ucfg_serve::ServerHandle,
    std::thread::JoinHandle<ucfg_serve::ServeSummary>,
) {
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("run"));
    (addr, handle, join)
}

/// Read everything until EOF (the server closes after error statuses).
fn read_to_close(stream: &mut TcpStream) -> String {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut buf = Vec::new();
    let _ = stream.read_to_end(&mut buf);
    String::from_utf8_lossy(&buf).into_owned()
}

/// The number of live connections the daemon reports.
fn live_connections(addr: &str) -> i64 {
    let mut probe = Client::connect_retry(addr, Duration::from_secs(5)).expect("probe connect");
    let r = probe.request("GET", "/healthz", None).expect("healthz");
    assert_eq!(r.status, 200);
    Json::parse(r.body.trim_end())
        .unwrap()
        .get("connections")
        .and_then(|v| match v {
            Json::Int(i) => Some(*i),
            _ => None,
        })
        .expect("connections field")
}

/// Poll until the daemon's live-connection count (excluding the probe
/// itself) drains to zero — i.e. every abused slot was reclaimed.
fn assert_slots_drain(addr: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        // The probe connection itself counts, hence == 1.
        if live_connections(addr) == 1 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "connection slots failed to drain"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn wire_edges() {
    let (addr, handle, join) = start(ServeConfig {
        port: 0,
        request_timeout_ms: 400,
        ..ServeConfig::default()
    });

    // ---- Every byte boundary: a request split into two writes at any
    // cut must still parse to the same 200.
    let body = r#"{"grammar":"S -> a","word":"a"}"#;
    let raw = format!(
        "POST /parse HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes();
    for cut in 1..raw.len() {
        let mut s = TcpStream::connect(&addr).expect("connect");
        s.write_all(&raw[..cut]).unwrap();
        s.flush().unwrap();
        // A small pause so the two fragments arrive as separate reads.
        if cut % 7 == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        s.write_all(&raw[cut..]).unwrap();
        let reply = read_to_close(&mut s);
        assert!(
            reply.starts_with("HTTP/1.1 200") && reply.contains("\"member\":true"),
            "cut={cut}: {reply}"
        );
    }
    assert_slots_drain(&addr);

    // ---- Pipelined requests in one write: answered in order on one
    // connection.
    let mut s = TcpStream::connect(&addr).expect("connect");
    s.write_all(b"GET /healthz HTTP/1.1\r\n\r\nGET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let reply = read_to_close(&mut s);
    assert_eq!(
        reply.matches("HTTP/1.1 200").count(),
        2,
        "both pipelined requests answered: {reply}"
    );

    // ---- Duplicate and conflicting Content-Length: 400, connection
    // closed (smuggling defence).
    for dup in [
        &b"POST /parse HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 8\r\n\r\nabc"[..],
        &b"POST /parse HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc"[..],
    ] {
        let mut s = TcpStream::connect(&addr).expect("connect");
        s.write_all(dup).unwrap();
        let reply = read_to_close(&mut s);
        assert!(
            reply.starts_with("HTTP/1.1 400") && reply.contains("content-length"),
            "{reply}"
        );
    }

    // ---- Oversized request line: 400 as soon as the cap is crossed,
    // even with no newline in sight.
    let mut s = TcpStream::connect(&addr).expect("connect");
    s.write_all(&vec![b'A'; 9000]).unwrap();
    let reply = read_to_close(&mut s);
    assert!(
        reply.starts_with("HTTP/1.1 400") && reply.contains("line too long"),
        "{reply}"
    );

    // ---- Declared body over the cap: 413 at header time.
    let mut s = TcpStream::connect(&addr).expect("connect");
    s.write_all(b"POST /parse HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n")
        .unwrap();
    let reply = read_to_close(&mut s);
    assert!(
        reply.starts_with("HTTP/1.1 413") && reply.contains("payload_too_large"),
        "{reply}"
    );
    assert_slots_drain(&addr);

    // ---- Abrupt mid-body disconnects: a burst of clients that die
    // mid-request must all be reaped.
    for _ in 0..16 {
        let mut s = TcpStream::connect(&addr).expect("connect");
        s.write_all(b"POST /parse HTTP/1.1\r\nContent-Length: 50\r\n\r\nonly-part")
            .unwrap();
        drop(s); // RST/FIN mid-body
    }
    assert_slots_drain(&addr);

    // ---- Slowloris: a header trickle that never completes is cut off
    // by the request deadline with 408, not held forever.
    let mut s = TcpStream::connect(&addr).expect("connect");
    s.write_all(b"GET /healthz HTTP/1.1\r\nX-Slow: ").unwrap();
    let t0 = Instant::now();
    let reply = read_to_close(&mut s);
    assert!(
        reply.starts_with("HTTP/1.1 408") && reply.contains("request_timeout"),
        "{reply}"
    );
    assert!(
        t0.elapsed() >= Duration::from_millis(300),
        "deadline fired suspiciously early: {:?}",
        t0.elapsed()
    );
    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "deadline took far too long: {:?}",
        t0.elapsed()
    );
    assert_slots_drain(&addr);

    // ---- HTTP/1.0 without a Connection header: answered, then the
    // connection is closed (1.0 defaults to close), so read_to_close
    // terminates without us sending Connection: close ourselves.
    let mut s = TcpStream::connect(&addr).expect("connect");
    s.write_all(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
    let reply = read_to_close(&mut s);
    assert!(
        reply.starts_with("HTTP/1.1 200") && reply.contains("Connection: close"),
        "{reply}"
    );
    assert_slots_drain(&addr);

    // ---- An empty connect-then-close must not leak either.
    drop(TcpStream::connect(&addr).expect("connect"));
    assert_slots_drain(&addr);

    handle.shutdown();
    let summary = join.join().expect("clean join");
    assert!(summary.requests > raw.len() as u64, "{:?}", summary);
}

/// Connections that never send a byte are on no request clock (that
/// only starts with the first byte), so only the idle timeout can
/// reclaim them. With the connection budget exhausted by silent peers,
/// the listener is paused — the reaper must free the slots and accepts
/// must resume, or one silent botnet blocks the daemon forever.
#[test]
fn silent_connections_are_reaped_and_unblock_accepts() {
    let (addr, handle, join) = start(ServeConfig {
        port: 0,
        max_connections: 4,
        idle_timeout_ms: 300,
        ..ServeConfig::default()
    });

    // Fill the whole budget with connections that say nothing.
    let silent: Vec<TcpStream> = (0..4)
        .map(|_| TcpStream::connect(&addr).expect("connect"))
        .collect();

    // A real client behind them: its connection waits in the kernel
    // backlog until the reaper frees slots, then must be served.
    let t0 = Instant::now();
    let mut probe = Client::connect_retry(&addr, Duration::from_secs(5)).expect("probe connect");
    let r = probe.request("GET", "/healthz", None).expect("healthz");
    assert_eq!(r.status, 200);
    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "accepts did not resume after idle reaping: {:?}",
        t0.elapsed()
    );

    // Every silent connection was closed by the server (EOF, no bytes).
    for mut s in silent {
        let leftovers = read_to_close(&mut s);
        assert_eq!(leftovers, "", "silent conns get no response, just FIN");
    }

    handle.shutdown();
    let summary = join.join().expect("clean join");
    assert_eq!(
        summary.requests, 1,
        "only the probe's healthz is a request; reaped conns count zero"
    );
}
