//! Synthetic high-concurrency load test against the event loop.
//!
//! The tentpole acceptance criterion for the event-driven serve layer:
//! **≥ 2,000 concurrent keep-alive connections, zero dropped or wedged
//! requests**. Fifty client threads open 41 connections each (2,050
//! total), rendezvous at a barrier so every connection is open at
//! once, then issue a health probe and a `/parse` on every connection.
//! Every response must be a 200, and the server's own request counter
//! must equal the exact number of requests sent — nothing dropped,
//! nothing double-counted.
//!
//! Numbers from this test are recorded in `EXPERIMENTS.md` ("Serve
//! layer under concurrency").

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use ucfg_serve::{Client, ServeConfig, Server};

const THREADS: usize = 50;
const CONNS_PER_THREAD: usize = 41; // 50 × 41 = 2,050 concurrent
const REQUESTS_PER_CONN: u64 = 2; // healthz + parse

#[test]
fn two_thousand_concurrent_keepalive_connections() {
    // The client side needs ~2,050 sockets too; make sure this process
    // may hold both halves plus headroom.
    ucfg_support::evloop::raise_nofile_limit(16_384).expect("rlimit");

    let server = Server::bind(ServeConfig {
        port: 0,
        max_connections: 4_096,
        shards: 2,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("run"));

    let barrier = Arc::new(Barrier::new(THREADS));
    let ok = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            let ok = Arc::clone(&ok);
            std::thread::spawn(move || {
                // Open every connection first …
                let mut conns: Vec<Client> = (0..CONNS_PER_THREAD)
                    .map(|_| {
                        Client::connect_retry(&addr, Duration::from_secs(30)).expect("connect")
                    })
                    .collect();
                // … and hold until all 2,050 are open simultaneously.
                barrier.wait();
                for (i, c) in conns.iter_mut().enumerate() {
                    let r = c.request("GET", "/healthz", None).expect("healthz");
                    assert_eq!(r.status, 200, "thread {t} conn {i}: {}", r.body);
                    // Same grammar everywhere: after warm-up this is a
                    // pure artifact-cache hit on one shard.
                    let r = c
                        .request(
                            "POST",
                            "/parse",
                            Some(r#"{"grammar":"S -> a S | b","word":"aab"}"#),
                        )
                        .expect("parse");
                    assert_eq!(r.status, 200, "thread {t} conn {i}: {}", r.body);
                    assert!(r.body.contains("\"member\":true"), "{}", r.body);
                    ok.fetch_add(REQUESTS_PER_CONN, Ordering::Relaxed);
                }
                // Connections close here (keep-alive until drop).
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }
    let elapsed = t0.elapsed();

    let sent = (THREADS * CONNS_PER_THREAD) as u64 * REQUESTS_PER_CONN;
    assert_eq!(
        ok.load(Ordering::Relaxed),
        sent,
        "every request must have been answered 200"
    );

    handle.shutdown();
    let summary = join.join().expect("clean join");
    assert_eq!(
        summary.requests, sent,
        "server must have answered exactly the {sent} requests sent \
         (zero dropped, zero spurious)"
    );

    // Not an assertion — a datapoint for EXPERIMENTS.md.
    eprintln!(
        "load test: {} connections, {} requests in {:.2?} ({:.0} req/s)",
        THREADS * CONNS_PER_THREAD,
        sent,
        elapsed,
        sent as f64 / elapsed.as_secs_f64()
    );
}
