//! End-to-end tests against a real daemon on a loopback socket.
//!
//! The acceptance criteria from the serving issues, verified live:
//! warm repeats of the same `/parse` hit the artifact cache (hit
//! counter up, no extra index build), responses are byte-identical
//! across worker-thread *and* shard counts, the connection budget
//! applies accept backpressure (late connections wait their turn
//! instead of being refused), and queue deadlines answer 504.
//!
//! The obs registry is process-global, so everything runs inside one
//! `#[test]` with sequential phases rather than racing tests.

use std::time::Duration;
use ucfg_serve::{Client, Json, ServeConfig, Server};
use ucfg_support::obs;

fn start(
    cfg: ServeConfig,
) -> (
    String,
    ucfg_serve::ServerHandle,
    std::thread::JoinHandle<ucfg_serve::ServeSummary>,
) {
    let server = Server::bind(cfg).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("run"));
    (addr, handle, join)
}

fn counter(name: &str) -> u64 {
    obs::counter(name).value()
}

#[test]
fn end_to_end() {
    obs::set_enabled(true);

    // ---- Phase 1: cache warm-up, counters, differential cross-check.
    let (addr, _handle, join) = start(ServeConfig {
        port: 0,
        ..ServeConfig::default()
    });
    let mut c = Client::connect_retry(&addr, Duration::from_secs(5)).expect("connect");

    let health = c.request("GET", "/healthz", None).expect("healthz");
    assert_eq!(health.status, 200);
    let v = Json::parse(health.body.trim_end()).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(v.get("shards"), Some(&Json::Int(1)));
    assert_eq!(
        v.get("connections"),
        Some(&Json::Int(1)),
        "our own connection is live: {}",
        health.body
    );

    let parse_body = r#"{"grammar":"S -> a S b S | ()","word":"aabb","check":true}"#;
    let hits_before = counter("serve.cache.hits");
    let builds_before = counter("cyk.index_builds");

    let cold = c
        .request("POST", "/parse", Some(parse_body))
        .expect("parse");
    assert_eq!(cold.status, 200, "{}", cold.body);
    let v = Json::parse(cold.body.trim_end()).unwrap();
    assert_eq!(v.get("member"), Some(&Json::Bool(true)));
    assert_eq!(v.get("parse_count").and_then(Json::as_str), Some("1"));
    assert_eq!(v.get("ambiguous"), Some(&Json::Bool(false)));
    assert_eq!(v.get("cache").and_then(Json::as_str), Some("miss"));
    assert_eq!(v.get("cross_check").and_then(Json::as_str), Some("ok"));

    let builds_after_cold = counter("cyk.index_builds");
    assert_eq!(
        builds_after_cold,
        builds_before + 1,
        "cold query compiles exactly one index"
    );

    // Warm repeat: byte-identical except the cache tag flips, hit
    // counter increments, and — the headline — no index rebuild.
    let warm = c
        .request("POST", "/parse", Some(parse_body))
        .expect("parse");
    assert_eq!(warm.status, 200);
    assert_eq!(
        warm.body,
        cold.body.replace("\"cache\":\"miss\"", "\"cache\":\"hit\""),
        "warm answer identical apart from the cache tag"
    );
    assert!(
        counter("serve.cache.hits") > hits_before,
        "hit counter moved"
    );
    assert_eq!(
        counter("cyk.index_builds"),
        builds_after_cold,
        "warm repeat must not rebuild the index"
    );

    // Repeat again: still identical bytes.
    let warm2 = c
        .request("POST", "/parse", Some(parse_body))
        .expect("parse");
    assert_eq!(warm2.body, warm.body);

    // An ambiguous grammar reports exact counts.
    let amb = c
        .request(
            "POST",
            "/parse",
            Some(r#"{"grammar":"S -> S S | a","word":"aaa","check":true}"#),
        )
        .expect("parse");
    let v = Json::parse(amb.body.trim_end()).unwrap();
    assert_eq!(v.get("ambiguous"), Some(&Json::Bool(true)));
    assert_eq!(v.get("parse_count").and_then(Json::as_str), Some("2"));

    // Builtin grammars resolve and cache under their content hash.
    let b1 = c
        .request(
            "POST",
            "/parse",
            Some(r#"{"builtin":"example4","n":3,"word":"aababb"}"#),
        )
        .expect("parse");
    assert_eq!(b1.status, 200, "{}", b1.body);
    let b2 = c
        .request(
            "POST",
            "/parse",
            Some(r#"{"builtin":"example4","n":3,"word":"aababb"}"#),
        )
        .expect("parse");
    let v = Json::parse(b2.body.trim_end()).unwrap();
    assert_eq!(v.get("cache").and_then(Json::as_str), Some("hit"));

    // Cover + discrepancy endpoints against the Example 8 family.
    let cover = c
        .request(
            "POST",
            "/cover/verify",
            Some(r#"{"n":4,"family":"example8"}"#),
        )
        .expect("cover");
    assert_eq!(cover.status, 200);
    let v = Json::parse(cover.body.trim_end()).unwrap();
    assert_eq!(v.get("covers_exactly"), Some(&Json::Bool(true)));
    let disc = c
        .request(
            "POST",
            "/discrepancy",
            Some(r#"{"n":4,"family":"example8"}"#),
        )
        .expect("discrepancy");
    let v = Json::parse(disc.body.trim_end()).unwrap();
    assert_eq!(v.get("sums_to_gap"), Some(&Json::Bool(true)));

    // Protocol errors.
    let bad = c.request("POST", "/parse", Some("{}")).expect("bad");
    assert_eq!(bad.status, 400);
    let missing = c.request("GET", "/nope", None).expect("404");
    assert_eq!(missing.status, 404);

    // Metrics endpoints: volatile last, deterministic view without it.
    let m = c.request("GET", "/metrics", None).expect("metrics");
    assert!(m.body.contains("\"serve.requests.parse\""));
    assert!(m.body.contains("\"volatile\""));
    let d = c
        .request("GET", "/metrics/deterministic", None)
        .expect("metrics det");
    assert!(!d.body.contains("\"volatile\""));

    // Graceful shutdown over the wire: POST /shutdown, run() returns.
    let bye = c.request("POST", "/shutdown", None).expect("shutdown");
    assert_eq!(bye.status, 200);
    assert!(bye.body.contains("draining"));
    let summary = join.join().expect("clean join");
    assert!(
        summary.requests >= 13,
        "answered {} requests",
        summary.requests
    );

    // ---- Phase 2: thread- and shard-count independence of response
    // bytes.
    let script: Vec<(&str, &str, Option<&str>)> = vec![
        (
            "POST",
            "/parse",
            Some(r#"{"grammar":"S -> a S b S | ()","word":"abab","check":true}"#),
        ),
        (
            "POST",
            "/parse",
            Some(r#"{"grammar":"S -> a S b S | ()","word":"abab","check":true}"#),
        ),
        (
            "POST",
            "/parse",
            Some(r#"{"builtin":"example4","n":2,"word":"abab"}"#),
        ),
        ("POST", "/cover/verify", Some(r#"{"n":5}"#)),
        ("POST", "/discrepancy", Some(r#"{"n":4}"#)),
    ];
    let mut transcripts = Vec::new();
    for (threads, shards) in [(1usize, 1usize), (4, 4)] {
        ucfg_support::par::set_thread_count(threads);
        let (addr, handle, join) = start(ServeConfig {
            port: 0,
            shards,
            ..ServeConfig::default()
        });
        let mut c = Client::connect_retry(&addr, Duration::from_secs(5)).expect("connect");
        let mut transcript = String::new();
        for (method, path, body) in &script {
            let r = c.request(method, path, *body).expect("scripted request");
            transcript.push_str(&format!("{} {}\n", r.status, r.body));
        }
        handle.shutdown();
        join.join().expect("clean join");
        transcripts.push(transcript);
    }
    assert_eq!(
        transcripts[0], transcripts[1],
        "responses must be byte-identical across (threads, shards) = (1,1) and (4,4)"
    );
    // The 4-shard run left its per-shard traffic in the volatile
    // stratum (shard placement is layout-dependent, so it must never
    // appear in the deterministic one).
    let volatile = obs::export_json("serve");
    assert!(
        volatile.contains(".cache.hits") && volatile.contains("serve.shard."),
        "per-shard counters recorded"
    );
    assert!(
        !obs::export_deterministic("serve").contains("serve.shard."),
        "per-shard counters must stay out of the deterministic stratum"
    );

    // ---- Phase 3: the connection budget applies *accept
    // backpressure* — a connection over the budget parks in the kernel
    // backlog and is served once a slot frees, rather than being
    // answered 503 or dropped.
    let (addr, handle, join) = start(ServeConfig {
        port: 0,
        max_connections: 1,
        ..ServeConfig::default()
    });
    let mut keep = Client::connect_retry(&addr, Duration::from_secs(5)).expect("connect");
    let held = keep.request("GET", "/healthz", None).expect("healthz");
    assert_eq!(held.status, 200);
    // Second connection: TCP-accepted into the backlog, but its request
    // can't be answered while the first holds the only slot.
    let waiter = std::thread::spawn(move || {
        let mut extra = Client::connect_retry(&addr, Duration::from_secs(5)).expect("connect");
        extra.request("GET", "/healthz", None).expect("healthz")
    });
    // Give the waiter time to queue, then free the slot.
    std::thread::sleep(Duration::from_millis(200));
    drop(keep);
    let late = waiter.join().expect("waiter thread");
    assert_eq!(
        late.status, 200,
        "backpressured connection must be served once the slot frees: {}",
        late.body
    );
    handle.shutdown();
    join.join().expect("clean join");

    // ---- Phase 4: queue-level load shedding over the wire. Deadline 0
    // forces every queued job to be rejected at dequeue (504), proving
    // the deadline path; depth bounds were proven at the unit level.
    let (addr, handle, join) = start(ServeConfig {
        port: 0,
        deadline_ms: 0,
        ..ServeConfig::default()
    });
    let mut c = Client::connect_retry(&addr, Duration::from_secs(5)).expect("connect");
    let r = c
        .request("POST", "/parse", Some(r#"{"grammar":"S -> a","word":"a"}"#))
        .expect("parse");
    assert_eq!(r.status, 504, "{}", r.body);
    assert!(r.body.contains("deadline_exceeded"), "{}", r.body);
    handle.shutdown();
    join.join().expect("clean join");
}
