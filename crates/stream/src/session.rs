//! A stream session: one grammar, one sliding window, optionally one
//! registered `CFG ∩ regex` query — the unit `/stream/*` endpoints and
//! the `ucfg stream` CLI driver operate on.
//!
//! Sessions are **deterministic by construction**: the session id is an
//! FNV digest of the opening parameters (grammar content hash, window,
//! regex, client-chosen name), every report is a pure function of the
//! token history, and truncation uses absolute stream positions. The
//! serve layer leans on this for its byte-identical-across-shards
//! contract.

use crate::product::ProductQuery;
use crate::window::WindowParser;
use std::fmt;
use std::sync::Arc;
use ucfg_grammar::cyk::CykChart;
use ucfg_grammar::normal_form::CnfGrammar;
use ucfg_grammar::symbol::Terminal;
use ucfg_grammar::Grammar;
use ucfg_support::fnv::Fnv1a;
use ucfg_support::obs;

/// Why a session operation was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// A fed character is not in the grammar's alphabet.
    UnknownLetter(char),
    /// The registered regex failed to parse.
    BadRegex(String),
    /// A truncate position outside `[base, total]`.
    TruncateOutOfRange {
        /// The requested position.
        requested: u64,
        /// Oldest position still covered (window base).
        base: u64,
        /// Current stream position.
        total: u64,
    },
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::UnknownLetter(c) => {
                write!(f, "letter {c:?} is not in the grammar's alphabet")
            }
            StreamError::BadRegex(msg) => write!(f, "regex: {msg}"),
            StreamError::TruncateOutOfRange {
                requested,
                base,
                total,
            } => write!(
                f,
                "truncate to {requested} outside the retained range [{base}, {total}]"
            ),
        }
    }
}

/// What a feed (or truncate) reports back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedReport {
    /// Tokens appended by this call (0 for truncates).
    pub fed: usize,
    /// Tokens evicted from the window front by this call.
    pub evicted: u64,
    /// Absolute stream position after the call.
    pub total: u64,
    /// Oldest position still in the window.
    pub base: u64,
    /// Tokens currently in the window.
    pub window_len: usize,
    /// Does the current window content parse?
    pub member: bool,
}

/// The registered product query's slice of a [`QueryReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProductReport {
    /// Is `L(G) ∩ L(regex)` non-empty (static Bar-Hillel verdict)?
    pub nonempty: bool,
    /// States in the compiled DFA.
    pub dfa_states: usize,
    /// Window suffixes currently in `L(G) ∩ L(regex)`.
    pub matches: usize,
}

/// A full point-in-time answer about the session's window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryReport {
    /// Absolute stream position.
    pub total: u64,
    /// Oldest position still in the window.
    pub base: u64,
    /// The window content, decoded to a string.
    pub window: String,
    /// Does the window content parse?
    pub member: bool,
    /// Window suffixes (incl. the empty one) in `L(G)`.
    pub suffix_matches: usize,
    /// Exact parse-tree count of the window content (CYK over the CNF
    /// conversion, same semantics as `/parse`), as a decimal string.
    pub count: String,
    /// Product-query answers, when a regex is registered.
    pub product: Option<ProductReport>,
}

/// One live streaming session.
pub struct StreamSession {
    id: u64,
    g: Arc<Grammar>,
    window: WindowParser,
    product: Option<ProductQuery>,
    cnf: CnfGrammar,
}

/// Derive the deterministic session id from the opening parameters.
/// Exposed so the serve router can shard-place a session without
/// building it.
pub fn session_id(grammar_hash: u64, window: usize, regex: Option<&str>, name: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.write(b"ucfg-stream-session-v1")
        .write_u64(grammar_hash)
        .write_usize(window);
    match regex {
        Some(r) => {
            h.write_u8(1).write_usize(r.len()).write(r.as_bytes());
        }
        None => {
            h.write_u8(0);
        }
    }
    h.write_usize(name.len()).write(name.as_bytes());
    h.finish()
}

impl StreamSession {
    /// Open a session: window of `capacity` tokens over `g`, optional
    /// regex for the product layer, `name` to distinguish otherwise
    /// identical sessions.
    pub fn open(
        g: Arc<Grammar>,
        capacity: usize,
        regex: Option<&str>,
        name: &str,
    ) -> Result<StreamSession, StreamError> {
        let id = session_id(g.content_hash(), capacity, regex, name);
        let product = match regex {
            Some(r) => Some(ProductQuery::compile(&g, r).map_err(StreamError::BadRegex)?),
            None => None,
        };
        let cnf = CnfGrammar::from_grammar(&g);
        let window = WindowParser::new(Arc::clone(&g), capacity);
        if obs::enabled() {
            obs::counter("stream.sessions").add(1);
        }
        Ok(StreamSession {
            id,
            g,
            window,
            product,
            cnf,
        })
    }

    /// The deterministic session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The session's grammar.
    pub fn grammar(&self) -> &Arc<Grammar> {
        &self.g
    }

    /// The window capacity this session was opened with.
    pub fn capacity(&self) -> usize {
        self.window.capacity()
    }

    /// Total tokens accepted over the session's lifetime (monotone
    /// except for truncates).
    pub fn total(&self) -> u64 {
        self.window.total()
    }

    /// Feed a text chunk; every character must be in the grammar's
    /// alphabet (nothing is fed otherwise).
    pub fn feed(&mut self, text: &str) -> Result<FeedReport, StreamError> {
        let tokens: Vec<Terminal> = text
            .chars()
            .map(|c| self.g.terminal_of(c).ok_or(StreamError::UnknownLetter(c)))
            .collect::<Result<_, _>>()?;
        let mut evicted = 0u64;
        for &t in &tokens {
            evicted += self.window.push(t) as u64;
            if let Some(q) = self.product.as_mut() {
                q.push(t);
            }
        }
        if let Some(q) = self.product.as_mut() {
            q.sync(&self.window);
        }
        Ok(self.feed_report(tokens.len(), evicted))
    }

    /// Rewind the stream to absolute position `to`. Only positions the
    /// window still covers are reachable; anything older was evicted.
    pub fn truncate(&mut self, to: u64) -> Result<FeedReport, StreamError> {
        let (base, total) = (self.window.base(), self.window.total());
        if to < base || to > total {
            return Err(StreamError::TruncateOutOfRange {
                requested: to,
                base,
                total,
            });
        }
        self.window.truncate(to);
        if let Some(q) = self.product.as_mut() {
            q.rewind(&self.window);
        }
        Ok(self.feed_report(0, 0))
    }

    fn feed_report(&self, fed: usize, evicted: u64) -> FeedReport {
        FeedReport {
            fed,
            evicted,
            total: self.window.total(),
            base: self.window.base(),
            window_len: self.window.window_len(),
            member: self.window.current_member(),
        }
    }

    /// Answer every query the session supports, in one deterministic
    /// report.
    pub fn query(&self) -> QueryReport {
        let tokens = self.window.window();
        let window: String = self.g.decode(&tokens);
        let count = match self.cnf.encode(&window) {
            Some(w) => CykChart::build(&self.cnf, &w).count_trees().to_string(),
            None => "0".to_string(),
        };
        let product = self.product.as_ref().map(|q| ProductReport {
            nonempty: q.nonempty(),
            dfa_states: q.dfa_states(),
            matches: q.window_matches(&self.window),
        });
        QueryReport {
            total: self.window.total(),
            base: self.window.base(),
            window,
            member: self.window.current_member(),
            suffix_matches: self.window.suffix_match_count(),
            count,
            product,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucfg_grammar::text::parse_grammar;

    fn dyck() -> Arc<Grammar> {
        Arc::new(parse_grammar("S -> a S b S | ()").unwrap())
    }

    #[test]
    fn session_ids_are_deterministic_and_parameter_sensitive() {
        let g = dyck();
        let a = StreamSession::open(Arc::clone(&g), 8, None, "").unwrap();
        let b = StreamSession::open(Arc::clone(&g), 8, None, "").unwrap();
        assert_eq!(a.id(), b.id());
        let c = StreamSession::open(Arc::clone(&g), 9, None, "").unwrap();
        let d = StreamSession::open(Arc::clone(&g), 8, Some("ab"), "").unwrap();
        let e = StreamSession::open(Arc::clone(&g), 8, None, "two").unwrap();
        assert_ne!(a.id(), c.id());
        assert_ne!(a.id(), d.id());
        assert_ne!(a.id(), e.id());
    }

    #[test]
    fn feed_query_truncate_round_trip() {
        let g = dyck();
        let mut s = StreamSession::open(Arc::clone(&g), 8, Some("a(a|b)*b"), "").unwrap();
        let r = s.feed("aabb").unwrap();
        assert_eq!(r.fed, 4);
        assert!(r.member);
        let q = s.query();
        assert_eq!(q.window, "aabb");
        assert_eq!(q.count, "1");
        let p = q.product.clone().unwrap();
        assert!(p.nonempty);
        assert_eq!(p.matches, 1, "only \"aabb\" matches both");

        // Feed junk, rewind, and get the same report back.
        s.feed("ab").unwrap();
        let r = s.truncate(4).unwrap();
        assert_eq!(r.total, 4);
        assert_eq!(s.query(), q);

        // Out-of-range truncates are refused with the retained range.
        let err = s.truncate(99).unwrap_err();
        assert!(matches!(err, StreamError::TruncateOutOfRange { .. }));
    }

    #[test]
    fn truncate_cannot_reach_evicted_positions() {
        let g = dyck();
        let mut s = StreamSession::open(Arc::clone(&g), 4, None, "").unwrap();
        s.feed("abababab").unwrap(); // base is now 4
        let err = s.truncate(2).unwrap_err();
        assert_eq!(
            err,
            StreamError::TruncateOutOfRange {
                requested: 2,
                base: 4,
                total: 8
            }
        );
        // But positions within the window are reachable.
        let r = s.truncate(6).unwrap();
        assert_eq!((r.base, r.total, r.window_len), (4, 6, 2));
    }

    #[test]
    fn foreign_letters_are_rejected_atomically() {
        let g = dyck();
        let mut s = StreamSession::open(Arc::clone(&g), 8, None, "").unwrap();
        assert_eq!(s.feed("abxb").unwrap_err(), StreamError::UnknownLetter('x'));
        assert_eq!(s.total(), 0);
    }
}
