//! The incremental Earley chart shared by [`crate::incremental::StreamParser`]
//! and [`crate::window::WindowParser`].
//!
//! The engine exploits a locality property of Earley's algorithm:
//! processing chart set `k` only ever *writes* into set `k` (predict,
//! complete) and set `k + 1` (scan), and only ever *reads* sets `≤ k`.
//! Once a set is closed under predict/complete it is final — appending a
//! token never revisits it. That makes three operations cheap:
//!
//! * **append** — scan the last closed set into a fresh set, then close
//!   the new set; every earlier set is reused verbatim (the
//!   `stream.chart_cells_reused` counter measures exactly this);
//! * **truncate** — drop the suffix of sets/tokens; the kept prefix is
//!   already final, so rewinding is a pair of `truncate` calls;
//! * **evict** — drop the *front* of the chart (sliding windows). Items
//!   whose origin predates the new base form a closed ecosystem: their
//!   completions only advance waiters in dropped sets, so discarding
//!   them cannot change any item whose origin survives.
//!
//! The predict/scan/complete order and the Aycock–Horspool nullable fix
//! mirror `ucfg_grammar::earley` item for item, so a chart grown by
//! appends is identical — same items, same per-set insertion order — to
//! the chart a from-scratch recognition of the same tokens would build.
//! The differential tests in `tests/differential.rs` pin that down.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;
use ucfg_grammar::analysis::nullable;
use ucfg_grammar::symbol::{Symbol, Terminal};
use ucfg_grammar::Grammar;
use ucfg_support::fnv::Fnv1a;
use ucfg_support::obs;

/// An Earley item: rule `rule` with the dot before position `dot`,
/// started at **absolute** stream position `origin` (absolute so that
/// window eviction never has to rewrite surviving items).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct Item {
    pub rule: u32,
    pub dot: u32,
    pub origin: u64,
}

/// The growable chart. `sets[i]` is the Earley set at absolute position
/// `base + i`; `tokens[i]` sits between `sets[i]` and `sets[i + 1]`.
/// Every set is closed under predict/complete at all times.
pub(crate) struct Chart {
    g: Arc<Grammar>,
    nullable: Vec<bool>,
    /// Seed start-rule items at *every* position (sliding-window mode),
    /// not just position 0, so "does the suffix starting at j parse?"
    /// can be read off the newest set.
    all_starts: bool,
    /// Absolute position of `sets[0]`.
    base: u64,
    tokens: VecDeque<Terminal>,
    sets: VecDeque<Vec<Item>>,
    seen: VecDeque<HashSet<Item>>,
    /// Total live items across all sets (the append-time reuse metric).
    cells: u64,
}

impl Chart {
    /// An empty chart at position 0 (set 0 seeded and closed).
    pub fn new(g: Arc<Grammar>, all_starts: bool) -> Chart {
        let nullable = nullable(&g);
        let mut chart = Chart {
            g,
            nullable,
            all_starts,
            base: 0,
            tokens: VecDeque::new(),
            sets: VecDeque::from([Vec::new()]),
            seen: VecDeque::from([HashSet::new()]),
            cells: 0,
        };
        chart.seed(0);
        chart.close(0);
        chart
    }

    /// The grammar this chart parses against.
    pub fn grammar(&self) -> &Arc<Grammar> {
        &self.g
    }

    /// Absolute position of the oldest retained set.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Absolute position of the newest set (= total tokens ever
    /// appended minus those truncated away).
    pub fn total(&self) -> u64 {
        self.base + self.tokens.len() as u64
    }

    /// Retained tokens, oldest first.
    pub fn tokens(&self) -> impl Iterator<Item = Terminal> + '_ {
        self.tokens.iter().copied()
    }

    /// Number of retained tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Total live chart items (all retained sets).
    pub fn cells(&self) -> u64 {
        self.cells
    }

    fn push(&mut self, k: usize, it: Item) {
        if self.seen[k].insert(it) {
            self.sets[k].push(it);
            self.cells += 1;
        }
    }

    /// Seed start-rule items with origin `base + k` into set `k`.
    fn seed(&mut self, k: usize) {
        let g = Arc::clone(&self.g);
        let origin = self.base + k as u64;
        for (ri, r) in g.rules().iter().enumerate() {
            if r.lhs == g.start() {
                self.push(
                    k,
                    Item {
                        rule: ri as u32,
                        dot: 0,
                        origin,
                    },
                );
            }
        }
    }

    /// Close set `k` under predict and complete (scans are deferred to
    /// [`Chart::append`]). Mirrors `ucfg_grammar::earley`, including the
    /// Aycock–Horspool nullable advance.
    fn close(&mut self, k: usize) {
        let g = Arc::clone(&self.g);
        let mut i = 0;
        while i < self.sets[k].len() {
            let it = self.sets[k][i];
            i += 1;
            let rule = &g.rules()[it.rule as usize];
            if (it.dot as usize) < rule.rhs.len() {
                match rule.rhs[it.dot as usize] {
                    Symbol::N(b) => {
                        // Predict.
                        let origin = self.base + k as u64;
                        for (ri, r) in g.rules().iter().enumerate() {
                            if r.lhs == b {
                                self.push(
                                    k,
                                    Item {
                                        rule: ri as u32,
                                        dot: 0,
                                        origin,
                                    },
                                );
                            }
                        }
                        if self.nullable[b.index()] {
                            self.push(
                                k,
                                Item {
                                    rule: it.rule,
                                    dot: it.dot + 1,
                                    origin: it.origin,
                                },
                            );
                        }
                    }
                    // Scan waits for the next token.
                    Symbol::T(_) => {}
                }
            } else {
                // Complete. An origin that predates the window base
                // points at an evicted set; its waiters were evicted
                // with it and can only beget more pre-base items.
                let lhs = rule.lhs;
                if it.origin < self.base {
                    continue;
                }
                let o = (it.origin - self.base) as usize;
                let to_advance: Vec<Item> = self.sets[o]
                    .iter()
                    .filter(|p| {
                        let pr = &g.rules()[p.rule as usize];
                        (p.dot as usize) < pr.rhs.len() && pr.rhs[p.dot as usize] == Symbol::N(lhs)
                    })
                    .copied()
                    .collect();
                for p in to_advance {
                    self.push(
                        k,
                        Item {
                            rule: p.rule,
                            dot: p.dot + 1,
                            origin: p.origin,
                        },
                    );
                }
            }
        }
    }

    /// Append one token: scan the last closed set into a fresh set, seed
    /// it (all-starts mode), and close it. Every previously closed set
    /// is reused untouched.
    pub fn append(&mut self, t: Terminal) {
        if obs::enabled() {
            obs::counter("stream.tokens").add(1);
            obs::counter("stream.chart_cells_reused").add(self.cells);
        }
        let k = self.sets.len() - 1;
        self.sets.push_back(Vec::new());
        self.seen.push_back(HashSet::new());
        let new = k + 1;
        let g = Arc::clone(&self.g);
        let mut i = 0;
        while i < self.sets[k].len() {
            let it = self.sets[k][i];
            i += 1;
            if it.origin < self.base {
                continue; // stale pre-base item awaiting a prune
            }
            let rule = &g.rules()[it.rule as usize];
            if (it.dot as usize) < rule.rhs.len() {
                if let Symbol::T(x) = rule.rhs[it.dot as usize] {
                    if x == t {
                        self.push(
                            new,
                            Item {
                                rule: it.rule,
                                dot: it.dot + 1,
                                origin: it.origin,
                            },
                        );
                    }
                }
            }
        }
        self.tokens.push_back(t);
        if self.all_starts {
            self.seed(new);
        }
        self.close(new);
    }

    /// Rewind to absolute position `to` (keep the first `to - base`
    /// retained tokens). The kept sets are final, so this is a pure
    /// truncation. Panics if `to` is outside `[base, total]` — callers
    /// validate.
    pub fn truncate(&mut self, to: u64) {
        assert!(
            to >= self.base && to <= self.total(),
            "truncate {to} outside [{}, {}]",
            self.base,
            self.total()
        );
        let keep = (to - self.base) as usize;
        self.tokens.truncate(keep);
        self.sets.truncate(keep + 1);
        self.seen.truncate(keep + 1);
        self.cells = self.sets.iter().map(|s| s.len() as u64).sum();
    }

    /// Drop the oldest set and token, advancing the base by one. Stale
    /// items (origin < base) left in surviving sets are skipped by the
    /// scan/complete steps and removed by the next [`Chart::prune`].
    pub fn evict_front(&mut self) {
        debug_assert!(!self.tokens.is_empty(), "evicting an empty chart");
        let dropped = self.sets.pop_front().expect("non-empty chart");
        self.seen.pop_front();
        self.tokens.pop_front();
        self.cells -= dropped.len() as u64;
        self.base += 1;
    }

    /// Remove items whose origin predates the base from every retained
    /// set. Called periodically (amortised) by the window layer so set
    /// sizes stay proportional to the window.
    pub fn prune(&mut self) {
        let base = self.base;
        for (set, seen) in self.sets.iter_mut().zip(self.seen.iter_mut()) {
            if set.iter().all(|it| it.origin >= base) {
                continue;
            }
            set.retain(|it| it.origin >= base);
            seen.retain(|it| it.origin >= base);
        }
        self.cells = self.sets.iter().map(|s| s.len() as u64).sum();
    }

    /// Is there a complete start-rule item with origin `j` in the newest
    /// set — i.e. does `tokens[j..total]` belong to the language?
    pub fn suffix_complete(&self, j: u64) -> bool {
        let g = &self.g;
        self.sets
            .back()
            .expect("chart has a newest set")
            .iter()
            .any(|it| {
                let r = &g.rules()[it.rule as usize];
                r.lhs == g.start() && it.origin == j && it.dot as usize == r.rhs.len()
            })
    }

    /// An order-insensitive digest of the retained chart: base, tokens,
    /// and every set as a sorted item list. Two charts with equal
    /// fingerprints hold identical item sets at identical positions.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_u64(self.base)
            .write_usize(self.tokens.len())
            .write_u8(u8::from(self.all_starts));
        for t in &self.tokens {
            h.write_u64(t.index() as u64);
        }
        for set in &self.sets {
            let mut items: Vec<Item> = set.clone();
            items.sort_unstable();
            h.write_usize(items.len());
            for it in items {
                h.write_u64(u64::from(it.rule))
                    .write_u64(u64::from(it.dot))
                    .write_u64(it.origin);
            }
        }
        h.finish()
    }
}
