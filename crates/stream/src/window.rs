//! Pillar 2: sliding-window membership over an unbounded token stream.
//!
//! A [`WindowParser`] keeps the last `capacity` tokens in a ring of
//! Earley sets and answers, after every push, "does the current window
//! parse?" and "which window suffixes parse?" — by delta maintenance,
//! not reparsing. The trick is the **all-starts chart**: start-rule
//! items are seeded at *every* position, so a complete start item with
//! origin `j` in the newest set certifies `tokens[j..now] ∈ L(G)` for
//! any `j` at once, the same shape streaming RPQ evaluators use for
//! their window delta operators.
//!
//! Sliding is sound because evicted items form a closed ecosystem: an
//! item whose origin predates the window base can only complete waiters
//! that also predate the base, so dropping the front sets (and lazily
//! pruning stragglers) never changes an answer about origins the window
//! still covers.

use crate::engine::Chart;
use std::sync::Arc;
use ucfg_grammar::symbol::Terminal;
use ucfg_grammar::Grammar;

/// A fixed-capacity sliding window with incremental Earley membership.
///
/// ```
/// use std::sync::Arc;
/// use ucfg_stream::WindowParser;
///
/// let g = Arc::new(ucfg_grammar::text::parse_grammar("S -> a S b S | ()").unwrap());
/// let mut w = WindowParser::new(Arc::clone(&g), 4);
/// for c in "abaabb".chars() {
///     w.push(g.terminal_of(c).unwrap());
/// }
/// // Window now holds "aabb" (capacity 4): balanced.
/// assert!(w.current_member());
/// // Suffixes "aabb", "abb", "bb", "b", "": two of the five parse
/// // ("aabb" and the empty suffix).
/// assert_eq!(w.suffix_match_count(), 2);
/// ```
pub struct WindowParser {
    chart: Chart,
    capacity: usize,
    /// Evictions since the last prune (amortises prune cost).
    evicted_since_prune: usize,
}

impl WindowParser {
    /// An empty window holding at most `capacity ≥ 1` tokens.
    pub fn new(g: Arc<Grammar>, capacity: usize) -> WindowParser {
        assert!(capacity >= 1, "window capacity must be at least 1");
        WindowParser {
            chart: Chart::new(g, true),
            capacity,
            evicted_since_prune: 0,
        }
    }

    /// The grammar this window parses against.
    pub fn grammar(&self) -> &Arc<Grammar> {
        self.chart.grammar()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Absolute position of the oldest token still in the window.
    pub fn base(&self) -> u64 {
        self.chart.base()
    }

    /// Absolute position just past the newest token (= tokens pushed).
    pub fn total(&self) -> u64 {
        self.chart.total()
    }

    /// Tokens currently in the window, oldest first.
    pub fn window(&self) -> Vec<Terminal> {
        self.chart.tokens().collect()
    }

    /// Number of tokens currently in the window.
    pub fn window_len(&self) -> usize {
        self.chart.len()
    }

    /// Push one token; returns the number of tokens evicted from the
    /// front (0 until the window fills, then 1 per push).
    pub fn push(&mut self, t: Terminal) -> usize {
        self.chart.append(t);
        let mut evicted = 0;
        while self.chart.len() > self.capacity {
            self.chart.evict_front();
            evicted += 1;
        }
        // Amortised prune: stale pre-base items are skipped by the
        // engine, but dropping them every half-capacity slides keeps
        // per-set sizes proportional to the window.
        self.evicted_since_prune += evicted;
        if self.evicted_since_prune >= self.capacity.div_ceil(2) {
            self.chart.prune();
            self.evicted_since_prune = 0;
        }
        evicted
    }

    /// Rewind to absolute position `to`, discarding the newest
    /// `total() - to` tokens. The kept chart prefix is final, so this is
    /// a pure suffix drop — the window base (and every suffix answer
    /// about retained positions) is preserved. Callers validate
    /// `base() <= to <= total()`.
    pub fn truncate(&mut self, to: u64) {
        self.chart.truncate(to);
    }

    /// Does the *current* window content belong to the language?
    pub fn current_member(&self) -> bool {
        self.chart.suffix_complete(self.chart.base())
    }

    /// Does the window suffix starting at absolute position `j` belong
    /// to the language? `j = total()` asks about the empty suffix.
    /// Returns `false` for positions the window no longer covers.
    pub fn suffix_member(&self, j: u64) -> bool {
        j >= self.chart.base() && j <= self.chart.total() && self.chart.suffix_complete(j)
    }

    /// How many window suffixes (including the empty one) belong to the
    /// language right now.
    pub fn suffix_match_count(&self) -> usize {
        (self.chart.base()..=self.chart.total())
            .filter(|&j| self.chart.suffix_complete(j))
            .count()
    }

    /// Total live chart items (bounded by the window, not the stream).
    pub fn cell_count(&self) -> u64 {
        self.chart.cells()
    }

    /// Digest of the retained chart, restricted to live (post-prune)
    /// state. Two windows over the same grammar holding the same tokens
    /// at the same absolute positions agree on all queries; the
    /// differential suite compares queries, which — unlike raw
    /// fingerprints — are insensitive to prune timing.
    pub fn fingerprint(&self) -> u64 {
        self.chart.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucfg_grammar::earley::Earley;
    use ucfg_grammar::text::parse_grammar;

    fn dyck() -> Arc<Grammar> {
        Arc::new(parse_grammar("S -> a S b S | ()").unwrap())
    }

    #[test]
    fn window_membership_matches_full_reparse_at_every_slide() {
        let g = dyck();
        let e = Earley::new(&g);
        let mut w = WindowParser::new(Arc::clone(&g), 4);
        let stream = "abaabbababbaabab";
        let tokens: Vec<char> = stream.chars().collect();
        for (i, &c) in tokens.iter().enumerate() {
            w.push(g.terminal_of(c).unwrap());
            let lo = (i + 1).saturating_sub(4);
            let content: String = tokens[lo..=i].iter().collect();
            assert_eq!(
                w.current_member(),
                e.recognize_str(&content),
                "window {content:?} after {} pushes",
                i + 1
            );
            // Every suffix too.
            for j in lo..=i + 1 {
                let suffix: String = tokens[j..=i].iter().collect();
                assert_eq!(
                    w.suffix_member(j as u64),
                    e.recognize_str(&suffix),
                    "suffix {suffix:?}"
                );
            }
        }
        assert_eq!(w.base(), 12);
        assert_eq!(w.total(), 16);
    }

    #[test]
    fn eviction_bounds_chart_size() {
        let g = dyck();
        let mut w = WindowParser::new(Arc::clone(&g), 8);
        let mut peak = 0;
        for i in 0..200 {
            let c = if i % 2 == 0 { 'a' } else { 'b' };
            w.push(g.terminal_of(c).unwrap());
            peak = peak.max(w.cell_count());
        }
        assert!(w.window_len() <= 8);
        // Cells stay window-bounded; a growing chart would be ~200 sets.
        assert!(peak < 2_000, "cells {peak} not window-bounded");
    }

    #[test]
    fn suffix_counts_include_the_empty_suffix_iff_nullable() {
        let g = dyck();
        let mut w = WindowParser::new(Arc::clone(&g), 4);
        assert_eq!(w.suffix_match_count(), 1, "empty suffix of empty window");
        for c in "abab".chars() {
            w.push(g.terminal_of(c).unwrap());
        }
        // Suffixes: "abab" ✓, "bab" ✗, "ab" ✓, "b" ✗, "" ✓.
        assert_eq!(w.suffix_match_count(), 3);

        // A non-nullable grammar: the empty suffix never counts.
        let g2 = Arc::new(parse_grammar("S -> a S | b").unwrap());
        let mut w2 = WindowParser::new(Arc::clone(&g2), 4);
        assert_eq!(w2.suffix_match_count(), 0);
        for c in "aab".chars() {
            w2.push(g2.terminal_of(c).unwrap());
        }
        // Suffixes: "aab" ✓, "ab" ✓, "b" ✓, "" ✗.
        assert_eq!(w2.suffix_match_count(), 3);
    }

    #[test]
    fn capacity_one_window_tracks_single_letters() {
        let g2 = Arc::new(parse_grammar("S -> a S | b").unwrap());
        let mut w = WindowParser::new(Arc::clone(&g2), 1);
        w.push(g2.terminal_of('a').unwrap());
        assert!(!w.current_member());
        let evicted = w.push(g2.terminal_of('b').unwrap());
        assert_eq!(evicted, 1);
        assert!(w.current_member(), "window is exactly \"b\"");
    }
}
