//! Pillar 1: the incremental Earley parser over an append-only token
//! stream, with explicit checkpoint/rewind.

use crate::engine::Chart;
use std::sync::Arc;
use ucfg_grammar::symbol::Terminal;
use ucfg_grammar::Grammar;

/// A resumable position in a [`StreamParser`]'s history, returned by
/// [`StreamParser::checkpoint`] and consumed by
/// [`StreamParser::truncate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Checkpoint(pub u64);

/// An Earley recogniser over a growing token stream.
///
/// Each [`StreamParser::append`] extends the chart by exactly one set,
/// reusing every previously closed set verbatim — amortised
/// O(new-set work) instead of the O(n · set work) a full reparse pays.
/// [`StreamParser::accepted`] answers "is the whole stream so far in
/// `L(G)`?" after any append, and [`StreamParser::truncate`] rewinds to
/// an earlier [`Checkpoint`] by dropping the chart suffix (the kept
/// prefix is final and needs no recomputation).
///
/// ```
/// use std::sync::Arc;
/// use ucfg_stream::StreamParser;
///
/// let g = Arc::new(ucfg_grammar::text::parse_grammar("S -> a S b S | ()").unwrap());
/// let mut p = StreamParser::new(Arc::clone(&g));
/// for c in "aabb".chars() {
///     p.append(g.terminal_of(c).unwrap());
/// }
/// assert!(p.accepted());
/// let cp = p.checkpoint();
/// p.append(g.terminal_of('a').unwrap());
/// assert!(!p.accepted());
/// p.truncate(cp).unwrap();
/// assert!(p.accepted());
/// ```
pub struct StreamParser {
    chart: Chart,
}

impl StreamParser {
    /// An empty stream over `g` (the empty prefix is already parsed).
    pub fn new(g: Arc<Grammar>) -> StreamParser {
        StreamParser {
            chart: Chart::new(g, false),
        }
    }

    /// The grammar this parser recognises.
    pub fn grammar(&self) -> &Arc<Grammar> {
        self.chart.grammar()
    }

    /// Append one token, extending the chart by one closed set.
    pub fn append(&mut self, t: Terminal) {
        self.chart.append(t);
    }

    /// Append every character of `text`, encoded through the grammar's
    /// alphabet. Returns the number of tokens appended, or the first
    /// foreign character (nothing is appended in that case).
    pub fn append_str(&mut self, text: &str) -> Result<usize, char> {
        let g = Arc::clone(self.chart.grammar());
        let tokens: Vec<Terminal> = text
            .chars()
            .map(|c| g.terminal_of(c).ok_or(c))
            .collect::<Result<_, _>>()?;
        for t in &tokens {
            self.append(*t);
        }
        Ok(tokens.len())
    }

    /// Number of tokens appended (and not truncated away).
    pub fn len(&self) -> u64 {
        self.chart.total()
    }

    /// Has nothing been appended (or everything been truncated)?
    pub fn is_empty(&self) -> bool {
        self.chart.total() == 0
    }

    /// Is the entire stream so far a member of the language?
    pub fn accepted(&self) -> bool {
        self.chart.suffix_complete(0)
    }

    /// The stream's tokens, oldest first.
    pub fn tokens(&self) -> Vec<Terminal> {
        self.chart.tokens().collect()
    }

    /// Mark the current position for a later [`StreamParser::truncate`].
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint(self.chart.total())
    }

    /// Rewind to a checkpoint, discarding every set and token appended
    /// after it. Fails (without modifying the chart) if the checkpoint
    /// lies beyond the current position.
    pub fn truncate(&mut self, cp: Checkpoint) -> Result<(), Checkpoint> {
        if cp.0 > self.chart.total() {
            return Err(cp);
        }
        self.chart.truncate(cp.0);
        Ok(())
    }

    /// Total live chart items across every set (the quantity an append
    /// reuses instead of recomputing).
    pub fn cell_count(&self) -> u64 {
        self.chart.cells()
    }

    /// An order-insensitive digest of the whole chart; equal
    /// fingerprints mean identical item sets at every position. The
    /// differential suite uses this to prove append/truncate sequences
    /// land on the same chart a from-scratch parse builds.
    pub fn fingerprint(&self) -> u64 {
        self.chart.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucfg_grammar::earley::Earley;
    use ucfg_grammar::text::parse_grammar;

    fn dyck() -> Arc<Grammar> {
        Arc::new(parse_grammar("S -> a S b S | ()").unwrap())
    }

    #[test]
    fn append_tracks_full_recognition() {
        let g = dyck();
        let e = Earley::new(&g);
        let mut p = StreamParser::new(Arc::clone(&g));
        assert!(p.accepted(), "empty word is balanced");
        let text = "aabbabab";
        for (i, c) in text.char_indices() {
            p.append(g.terminal_of(c).unwrap());
            let prefix = &text[..=i];
            assert_eq!(p.accepted(), e.recognize_str(prefix), "prefix {prefix}");
        }
        assert_eq!(p.len(), 8);
    }

    #[test]
    fn truncate_rewinds_to_the_checkpointed_chart() {
        let g = dyck();
        let mut p = StreamParser::new(Arc::clone(&g));
        p.append_str("aabb").unwrap();
        let cp = p.checkpoint();
        let fp = p.fingerprint();
        p.append_str("ababab").unwrap();
        assert_ne!(p.fingerprint(), fp);
        p.truncate(cp).unwrap();
        assert_eq!(p.fingerprint(), fp);
        assert!(p.accepted());

        // A stale checkpoint from the discarded future is rejected.
        assert!(p.truncate(Checkpoint(10)).is_err());
        // Truncating to the current position is a no-op.
        p.truncate(p.checkpoint()).unwrap();
        assert_eq!(p.fingerprint(), fp);
    }

    #[test]
    fn append_str_rejects_foreign_letters_atomically() {
        let g = dyck();
        let mut p = StreamParser::new(g);
        assert_eq!(p.append_str("abxab"), Err('x'));
        assert!(p.is_empty(), "nothing appended on a foreign letter");
        assert_eq!(p.append_str("ab"), Ok(2));
    }

    #[test]
    fn incremental_chart_matches_from_scratch() {
        let g = dyck();
        let mut incremental = StreamParser::new(Arc::clone(&g));
        incremental.append_str("aab").unwrap();
        incremental.truncate(Checkpoint(1)).unwrap();
        incremental.append_str("babab").unwrap();

        // Final token sequence: "a" + "babab".
        let mut fresh = StreamParser::new(Arc::clone(&g));
        fresh.append_str("ababab").unwrap();
        assert_eq!(incremental.fingerprint(), fresh.fingerprint());
        assert_eq!(incremental.cell_count(), fresh.cell_count());
    }
}
