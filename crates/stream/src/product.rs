//! Pillar 3: the online Bar-Hillel layer — `CFG ∩ regex` as a live
//! query over a sliding window.
//!
//! Registering a regex does two things:
//!
//! 1. **Static emptiness.** The regex compiles (Glushkov → subset
//!    construction) to a [`Dfa`], and the Bar-Hillel triple construction
//!    ([`ucfg_automata::intersect::intersect_cnf_dfa`]) decides once
//!    whether `L(G) ∩ L(R)` is empty at all — the Clemente-style
//!    inclusion/universality primitive, answered before a single token
//!    streams in.
//! 2. **Online window matches.** For the per-window count the product
//!    grammar is *not* reparsed: the layer maintains, for every origin
//!    `j` the window covers, the DFA state reached by running `R` over
//!    `tokens[j..now]`. One appended token advances every tracked state
//!    by a single transition — O(window) per token — and a window suffix
//!    matches `CFG ∩ regex` exactly when the all-starts chart has a
//!    complete start item at `j` *and* the tracked DFA state at `j` is
//!    accepting.

use crate::window::WindowParser;
use std::collections::VecDeque;
use std::sync::Arc;
use ucfg_automata::dfa::Dfa;
use ucfg_automata::nfa::State;
use ucfg_automata::regex::Regex;
use ucfg_grammar::analysis::productive;
use ucfg_grammar::normal_form::CnfGrammar;
use ucfg_grammar::symbol::Terminal;
use ucfg_grammar::Grammar;

/// A compiled `CFG ∩ regex` query bound to one token stream.
///
/// ```
/// use std::sync::Arc;
/// use ucfg_stream::{ProductQuery, WindowParser};
///
/// let g = Arc::new(ucfg_grammar::text::parse_grammar("S -> a S b S | ()").unwrap());
/// let mut w = WindowParser::new(Arc::clone(&g), 8);
/// let mut q = ProductQuery::compile(&g, "a(a|b)*b").unwrap();
/// assert!(q.nonempty(), "balanced words matching a(a|b)*b exist");
/// for c in "aabb".chars() {
///     let t = g.terminal_of(c).unwrap();
///     w.push(t);
///     q.push(t);
///     q.sync(&w);
/// }
/// // Suffixes of "aabb" in both languages: just "aabb" itself.
/// assert_eq!(q.window_matches(&w), 1);
/// ```
pub struct ProductQuery {
    regex: String,
    dfa: Dfa,
    /// Terminal index → DFA alphabet symbol (None = dead letter).
    sym_of: Vec<Option<usize>>,
    /// `states[i]` is the DFA state reached from `initial` over
    /// `tokens[base + i .. now]`; `None` once the run died. The last
    /// entry is the empty suffix (always `initial`).
    states: VecDeque<Option<State>>,
    /// Absolute position of `states[0]`.
    base: u64,
    /// Is `L(G) ∩ L(R)` non-empty (decided statically at compile)?
    nonempty: bool,
}

impl ProductQuery {
    /// Parse and compile `regex`, build the Bar-Hillel product with `g`,
    /// and decide emptiness. Returns the parse error message on a bad
    /// regex.
    pub fn compile(g: &Arc<Grammar>, regex: &str) -> Result<ProductQuery, String> {
        let parsed = Regex::parse(regex).map_err(|e| e.to_string())?;
        let dfa = Dfa::from_nfa(&parsed.glushkov()).minimized();
        let cnf = CnfGrammar::from_grammar(g.as_ref());
        let product = ucfg_automata::intersect::intersect_cnf_dfa(&cnf, &dfa);
        // The triple construction covers non-empty words; ε is in the
        // intersection iff both sides accept it.
        let nonempty = productive(&product)[product.start().index()]
            || (cnf.accepts_epsilon() && dfa.accepts(""));
        let sym_of = g
            .alphabet()
            .iter()
            .map(|&c| dfa.alphabet().iter().position(|&x| x == c))
            .collect();
        let initial = dfa.initial();
        Ok(ProductQuery {
            regex: regex.to_string(),
            dfa,
            sym_of,
            states: VecDeque::from([Some(initial)]),
            base: 0,
            nonempty,
        })
    }

    /// The registered regex, verbatim.
    pub fn regex(&self) -> &str {
        &self.regex
    }

    /// Number of states in the compiled (minimised) DFA.
    pub fn dfa_states(&self) -> usize {
        self.dfa.state_count()
    }

    /// Is `L(G) ∩ L(R)` non-empty? Decided once, statically, by the
    /// Bar-Hillel product — independent of what has streamed in.
    pub fn nonempty(&self) -> bool {
        self.nonempty
    }

    /// Advance every tracked suffix run over one appended token and
    /// start tracking the new empty suffix. Must be called once per
    /// token, in step with the window's `push`.
    pub fn push(&mut self, t: Terminal) {
        let sym = self.sym_of[t.index()];
        for s in self.states.iter_mut() {
            *s = match (*s, sym) {
                (Some(p), Some(sym)) => self.dfa.step(p, sym),
                _ => None,
            };
        }
        self.states.push_back(Some(self.dfa.initial()));
    }

    /// Drop tracked origins the window no longer covers. Call after the
    /// window's own eviction (any number of pushes later — the layer
    /// catches up to `w.base()`).
    pub fn sync(&mut self, w: &WindowParser) {
        while self.base < w.base() && self.states.len() > 1 {
            self.states.pop_front();
            self.base += 1;
        }
        debug_assert_eq!(self.base, w.base(), "product layer out of step");
        debug_assert_eq!(self.states.len() as u64, w.total() - w.base() + 1);
    }

    /// Re-derive every tracked DFA state from the window's retained
    /// tokens. Used after a truncate, which un-advances runs in a way
    /// the forward-only transition table cannot.
    pub fn rewind(&mut self, w: &WindowParser) {
        let tokens = w.window();
        self.base = w.base();
        self.states.clear();
        for j in 0..=tokens.len() {
            let mut s = Some(self.dfa.initial());
            for &t in &tokens[j..] {
                s = match (s, self.sym_of[t.index()]) {
                    (Some(p), Some(sym)) => self.dfa.step(p, sym),
                    _ => None,
                };
            }
            self.states.push_back(s);
        }
    }

    /// How many suffixes of the current window are in `L(G) ∩ L(R)`:
    /// positions where the CFG chart has a complete start item *and*
    /// the tracked DFA run is in an accepting state.
    pub fn window_matches(&self, w: &WindowParser) -> usize {
        debug_assert_eq!(self.base, w.base(), "call sync() after pushes");
        self.states
            .iter()
            .enumerate()
            .filter(|&(i, s)| {
                s.is_some_and(|s| self.dfa.is_accepting(s)) && w.suffix_member(self.base + i as u64)
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucfg_grammar::earley::Earley;
    use ucfg_grammar::text::parse_grammar;

    fn dyck() -> Arc<Grammar> {
        Arc::new(parse_grammar("S -> a S b S | ()").unwrap())
    }

    #[test]
    fn static_emptiness_matches_the_product_grammar() {
        let g = dyck();
        // Balanced ∩ a(a|b)*b: non-empty ("ab", "aabb", …).
        assert!(ProductQuery::compile(&g, "a(a|b)*b").unwrap().nonempty());
        // Balanced ∩ b(a|b)*: a balanced word never starts with 'b'.
        assert!(!ProductQuery::compile(&g, "b(a|b)*").unwrap().nonempty());
        // ε reaches the intersection through the optional branch: the
        // triple construction only covers non-empty words, so this pins
        // the explicit ε check.
        assert!(ProductQuery::compile(&g, "a?").unwrap().nonempty());
        let g2 = Arc::new(parse_grammar("S -> a S | b").unwrap());
        // a*b ∩ {a} is empty; a*b ∩ {ab} is not.
        assert!(!ProductQuery::compile(&g2, "a").unwrap().nonempty());
        assert!(ProductQuery::compile(&g2, "ab").unwrap().nonempty());
    }

    #[test]
    fn bad_regex_reports_a_parse_error() {
        let g = dyck();
        assert!(ProductQuery::compile(&g, "a(b").is_err());
    }

    #[test]
    fn online_counts_match_brute_force() {
        let g = dyck();
        let e = Earley::new(&g);
        let regex = "a(a|b)*b";
        let parsed = Regex::parse(regex).unwrap();
        let dfa = Dfa::from_nfa(&parsed.glushkov());
        let mut w = WindowParser::new(Arc::clone(&g), 6);
        let mut q = ProductQuery::compile(&g, regex).unwrap();
        let stream: Vec<char> = "abaabbababab".chars().collect();
        for (i, &c) in stream.iter().enumerate() {
            let t = g.terminal_of(c).unwrap();
            w.push(t);
            q.push(t);
            q.sync(&w);
            let lo = (i + 1).saturating_sub(6);
            let brute = (lo..=i + 1)
                .filter(|&j| {
                    let suffix: String = stream[j..=i].iter().collect();
                    e.recognize_str(&suffix) && dfa.accepts(&suffix)
                })
                .count();
            assert_eq!(q.window_matches(&w), brute, "after {} pushes", i + 1);
        }
    }
}
