//! Streaming parse subsystem: incremental Earley, sliding-window
//! membership, and an online Bar-Hillel `CFG ∩ regex` query layer.
//!
//! The batch kernels elsewhere in the workspace answer questions about a
//! *fixed* word. This crate answers the same questions about a *moving*
//! one — a token stream that grows, slides, and rewinds — without
//! reparsing from scratch on every change:
//!
//! * [`StreamParser`] — append-only incremental Earley with
//!   [`StreamParser::checkpoint`] / [`StreamParser::truncate`] rewind;
//!   each append extends the chart by one set and reuses every closed
//!   set verbatim.
//! * [`WindowParser`] — a fixed-capacity sliding window over an
//!   unbounded stream, answering window and window-suffix membership by
//!   delta maintenance on an all-starts chart.
//! * [`ProductQuery`] — a registered regex, compiled through Glushkov →
//!   DFA → Bar-Hillel product for static `CFG ∩ regex` (non)emptiness,
//!   plus per-window match counts maintained one DFA transition per
//!   token.
//! * [`StreamSession`] — the deterministic session object the
//!   `/stream/*` serve endpoints and the `ucfg stream` CLI driver
//!   operate on, bundling a window, an optional product query, and an
//!   exact tree counter.
//!
//! Everything is deterministic: session ids are FNV digests of the
//! opening parameters, and every report is a pure function of the token
//! history — the serve layer's byte-identical-across-shards contract
//! extends to streams unchanged.

#![warn(missing_docs)]

pub(crate) mod engine;
pub mod incremental;
pub mod product;
pub mod session;
pub mod window;

pub use incremental::{Checkpoint, StreamParser};
pub use product::ProductQuery;
pub use session::{session_id, FeedReport, ProductReport, QueryReport, StreamError, StreamSession};
pub use window::WindowParser;
