//! Differential property tests for the streaming subsystem.
//!
//! The incremental engine re-implements Earley's chart construction
//! with append/truncate/evict deltas; these tests pin it to the
//! from-scratch kernels on random general grammars and random streams:
//!
//! * a chart grown by k appends is *identical* (same items at every
//!   position, same cell count) to the chart a fresh parse of the same
//!   tokens builds, and both agree with `ucfg_grammar::earley` on
//!   membership at every prefix;
//! * truncate/rewind round-trips land on the checkpointed chart
//!   fingerprint exactly, no matter what streamed in between;
//! * sliding-window membership, suffix counts, and `CFG ∩ regex` match
//!   counts agree with brute-force full reparses of every window
//!   suffix;
//! * everything above is bit-identical across `par` thread counts
//!   1 / 2 / 8 — the streaming layer is deterministic under the same
//!   knob the serve matrix varies.

use std::sync::Arc;
use ucfg_automata::dfa::Dfa;
use ucfg_automata::regex::Regex;
use ucfg_grammar::earley::Earley;
use ucfg_grammar::{Grammar, GrammarBuilder, NonTerminal, Symbol, Terminal};
use ucfg_stream::{ProductQuery, StreamParser, StreamSession, WindowParser};
use ucfg_support::prop::Gen;
use ucfg_support::rng::Rng;
use ucfg_support::{par, prop_assert, prop_assert_eq, property};

const ALPHABET: [char; 2] = ['a', 'b'];

/// Regex pool for the product layer; all parse, some are empty against
/// many random grammars (both emptiness verdicts get exercised).
const REGEXES: [&str; 5] = ["a(a|b)*b", "(ab)*", "a*", "b(a|b)?", "(a|b)(a|b)*"];

/// A random general grammar: bodies of length 0..=3 mixing terminals
/// and non-terminals, so ε-rules, unit rules, and useless symbols all
/// occur (same shape as the grammar crate's own differential suite).
fn rand_grammar(g: &mut Gen) -> Arc<Grammar> {
    let nts = g.int_in(1usize..=4);
    let mut b = GrammarBuilder::new(&ALPHABET);
    let ids: Vec<NonTerminal> = (0..nts).map(|i| b.nonterminal(&format!("N{i}"))).collect();
    let rules = g.int_in(1usize..=(2 * nts + 3));
    for _ in 0..rules {
        let lhs = *g.choice(&ids);
        let body_len = g.int_in(0usize..=3);
        let rhs: Vec<Symbol> = (0..body_len)
            .map(|_| {
                if g.bool() {
                    Symbol::T(Terminal(g.rng().random_range(0..2u16)))
                } else {
                    Symbol::N(*g.choice(&ids))
                }
            })
            .collect();
        b.raw_rule(lhs, rhs);
    }
    Arc::new(b.build(ids[0]))
}

/// A random token stream over {a, b}, length 0..=12.
fn rand_stream(g: &mut Gen) -> Vec<Terminal> {
    g.vec_of(0..13, |g| Terminal(g.rng().random_range(0..2u16)))
}

/// A random append/truncate edit script. Each step either appends a
/// token or rewinds to a random earlier position.
#[derive(Debug, Clone)]
enum Edit {
    Append(Terminal),
    TruncateTo(u64),
}

fn rand_edits(g: &mut Gen) -> Vec<Edit> {
    g.vec_of(1..16, |g| {
        if g.rng().random_range(0..4u32) == 0 {
            // Interpreted modulo the current length at replay time.
            Edit::TruncateTo(g.rng().random_range(0..16u64))
        } else {
            Edit::Append(Terminal(g.rng().random_range(0..2u16)))
        }
    })
}

property! {
    cases = 96;
    /// k appends build the same chart a from-scratch parse builds, and
    /// agree with the batch Earley recogniser at every prefix.
    fn appends_equal_full_reparse(
        g in rand_grammar,
        stream in rand_stream,
    ) {
        let e = Earley::new(&g);
        let mut p = StreamParser::new(Arc::clone(&g));
        for (i, &t) in stream.iter().enumerate() {
            p.append(t);
            prop_assert_eq!(
                p.accepted(),
                e.recognize(&stream[..=i]),
                "prefix of length {}",
                i + 1
            );
            let mut fresh = StreamParser::new(Arc::clone(&g));
            for &t in &stream[..=i] {
                fresh.append(t);
            }
            prop_assert_eq!(p.fingerprint(), fresh.fingerprint());
            prop_assert_eq!(p.cell_count(), fresh.cell_count());
        }
    }

    cases = 96;
    /// Any append/truncate script is equivalent to a fresh parse of the
    /// surviving tokens, and a checkpoint taken anywhere restores the
    /// exact chart fingerprint.
    fn edit_scripts_equal_replay(
        g in rand_grammar,
        edits in rand_edits,
    ) {
        let mut p = StreamParser::new(Arc::clone(&g));
        let mut shadow: Vec<Terminal> = Vec::new();
        let cp = p.checkpoint();
        let cp_fp = p.fingerprint();
        for e in &edits {
            match e {
                Edit::Append(t) => {
                    p.append(*t);
                    shadow.push(*t);
                }
                Edit::TruncateTo(raw) => {
                    let to = if shadow.is_empty() { 0 } else { raw % (shadow.len() as u64 + 1) };
                    p.truncate(ucfg_stream::Checkpoint(to)).unwrap();
                    shadow.truncate(to as usize);
                }
            }
            let mut fresh = StreamParser::new(Arc::clone(&g));
            for &t in &shadow {
                fresh.append(t);
            }
            prop_assert_eq!(p.fingerprint(), fresh.fingerprint(), "after {:?}", e);
        }
        // Rewinding all the way back restores the initial chart.
        p.truncate(cp).unwrap();
        prop_assert_eq!(p.fingerprint(), cp_fp);
        prop_assert!(p.is_empty());
    }

    cases = 64;
    /// Sliding-window membership, suffix counts, and product-query match
    /// counts agree with brute-force reparses at every slide.
    fn window_and_product_equal_brute_force(
        g in rand_grammar,
        stream in rand_stream,
        cap in |g: &mut Gen| g.int_in(1usize..=5),
        ri in |g: &mut Gen| g.int_in(0usize..REGEXES.len()),
    ) {
        let e = Earley::new(&g);
        let regex = REGEXES[ri];
        let dfa = Dfa::from_nfa(&Regex::parse(regex).unwrap().glushkov());
        let mut w = WindowParser::new(Arc::clone(&g), cap);
        let mut q = ProductQuery::compile(&g, regex).unwrap();
        for (i, &t) in stream.iter().enumerate() {
            w.push(t);
            q.push(t);
            q.sync(&w);
            let lo = (i + 1).saturating_sub(cap);
            let mut suffix_members = 0usize;
            let mut product_matches = 0usize;
            for j in lo..=i + 1 {
                let suffix = &stream[j..=i];
                let member = if suffix.is_empty() {
                    e.recognize(&[])
                } else {
                    e.recognize(suffix)
                };
                prop_assert_eq!(w.suffix_member(j as u64), member, "suffix at {j}");
                suffix_members += usize::from(member);
                let text: String = suffix.iter().map(|&t| ALPHABET[t.index()]).collect();
                product_matches += usize::from(member && dfa.accepts(&text));
            }
            prop_assert_eq!(w.suffix_match_count(), suffix_members);
            prop_assert_eq!(q.window_matches(&w), product_matches);
            prop_assert_eq!(w.current_member(), e.recognize(&stream[lo..=i]));
        }
    }
}

/// The whole streaming layer is deterministic across `par` thread
/// counts: identical fingerprints and identical session reports at
/// 1, 2, and 8 threads (the axis the serve CI matrix varies).
#[test]
fn results_are_identical_across_thread_counts() {
    let mut outcomes: Vec<(u64, String)> = Vec::new();
    for threads in [1usize, 2, 8] {
        par::set_thread_count(threads);
        let mut g = Gen::new(0x5eed_1e55, 1.0);
        let grammar = rand_grammar(&mut g);
        let stream = rand_stream(&mut g);
        let mut s = StreamSession::open(Arc::clone(&grammar), 4, Some("a(a|b)*b"), "dt").unwrap();
        let text: String = stream.iter().map(|&t| ALPHABET[t.index()]).collect();
        s.feed(&text).unwrap();
        let q = s.query();
        let mut p = StreamParser::new(Arc::clone(&grammar));
        for &t in &stream {
            p.append(t);
        }
        outcomes.push((p.fingerprint(), format!("{q:?}")));
    }
    par::set_thread_count(1);
    assert_eq!(outcomes[0], outcomes[1], "1 vs 2 threads");
    assert_eq!(outcomes[0], outcomes[2], "1 vs 8 threads");
}
