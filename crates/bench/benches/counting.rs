//! Counting benches (experiment T13/T15 timing side): the algorithmic win
//! of unambiguity — linear-time DP on the uCFG / deterministic circuit vs
//! materialisation — and the factorised-join gap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ucfg_automata::ln_nfa::exact_nfa;
use ucfg_core::ln_grammars::{appendix_a_grammar, example4_ucfg};
use ucfg_factorized::convert::grammar_to_circuit;
use ucfg_factorized::join::{complete_chain, factorized_path_join, materialized_path_join, path_join_count};
use ucfg_grammar::count::derivation_counts_by_length;
use ucfg_grammar::language::word_counts_by_length;
use ucfg_grammar::normal_form::CnfGrammar;

fn bench_count_ln(c: &mut Criterion) {
    let mut g = c.benchmark_group("count_ln_words");
    for n in [4usize, 5, 6] {
        // (a) uCFG derivation-count DP: counts words because unambiguous.
        let ucfg = CnfGrammar::from_grammar(&example4_ucfg(n));
        g.bench_with_input(BenchmarkId::new("ucfg_dp", n), &ucfg, |b, cnf| {
            b.iter(|| derivation_counts_by_length(black_box(cnf), 2 * n).pop())
        });
        // (b) ambiguous CFG: the same DP over-counts, so words must be
        // materialised and deduplicated.
        let cfg = CnfGrammar::from_grammar(&appendix_a_grammar(n));
        g.bench_with_input(BenchmarkId::new("ambiguous_materialize", n), &cfg, |b, cnf| {
            b.iter(|| word_counts_by_length(black_box(cnf), 2 * n).pop())
        });
        // (c) deterministic circuit.
        let circ = grammar_to_circuit(&example4_ucfg(n)).unwrap();
        g.bench_with_input(BenchmarkId::new("circuit", n), &circ, |b, circ| {
            b.iter(|| black_box(circ).count_derivations())
        });
    }
    g.finish();
}

fn bench_count_automata(c: &mut Criterion) {
    let mut g = c.benchmark_group("count_via_automata");
    for n in [4usize, 6, 8] {
        let nfa = exact_nfa(n);
        g.bench_with_input(BenchmarkId::new("nfa_subset_count", n), &nfa, |b, nfa| {
            b.iter(|| black_box(nfa).accepted_word_counts(2 * n).pop())
        });
    }
    g.finish();
}

fn bench_factorized_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("factorized_join");
    for (d, k) in [(3u32, 5usize), (4, 6)] {
        let rels = complete_chain(d, k);
        g.bench_with_input(
            BenchmarkId::new("build_circuit", format!("d{d}k{k}")),
            &rels,
            |b, rels| b.iter(|| factorized_path_join(black_box(rels)).size()),
        );
        g.bench_with_input(
            BenchmarkId::new("count_dp", format!("d{d}k{k}")),
            &rels,
            |b, rels| b.iter(|| path_join_count(black_box(rels))),
        );
        g.bench_with_input(
            BenchmarkId::new("materialize", format!("d{d}k{k}")),
            &rels,
            |b, rels| b.iter(|| materialized_path_join(black_box(rels)).len()),
        );
    }
    g.finish();
}

fn bench_semiring_inside(c: &mut Criterion) {
    use ucfg_grammar::weighted::{inside_at, Count, MinPlus, TableWeights, UnitWeights};
    let mut g = c.benchmark_group("semiring_inside");
    for n in [4usize, 5] {
        let ucfg = CnfGrammar::from_grammar(&example4_ucfg(n));
        g.bench_with_input(BenchmarkId::new("count", n), &ucfg, |b, cnf| {
            b.iter(|| inside_at::<Count>(black_box(cnf), &UnitWeights, 2 * n))
        });
        let w = TableWeights(vec![MinPlus(Some(1)), MinPlus(Some(0))]);
        g.bench_with_input(BenchmarkId::new("tropical", n), &ucfg, |b, cnf| {
            b.iter(|| inside_at::<MinPlus>(black_box(cnf), &w, 2 * n))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_count_ln,
    bench_count_automata,
    bench_factorized_join,
    bench_semiring_inside
);
criterion_main!(benches);
