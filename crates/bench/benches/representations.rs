//! Representation-building benches (experiments T1/T3/T11/T12 timing
//! side): constructing the paper's grammars, CNF conversion, Lemma 10
//! annotation, DAWG construction, and the circuit isomorphism.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ucfg_automata::dawg::DawgBuilder;
use ucfg_automata::ln_nfa::{exact_nfa, pattern_nfa};
use ucfg_core::ln_grammars::{appendix_a_grammar, example4_ucfg};
use ucfg_core::words;
use ucfg_factorized::convert::grammar_to_circuit;
use ucfg_grammar::annotated::annotate;
use ucfg_grammar::normal_form::CnfGrammar;

fn bench_grammar_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("grammar_construction");
    for n in [256usize, 4096, 65536] {
        g.bench_with_input(BenchmarkId::new("appendixA", n), &n, |b, &n| {
            b.iter(|| appendix_a_grammar(black_box(n)).size())
        });
    }
    for n in [6usize, 8, 10] {
        g.bench_with_input(BenchmarkId::new("example4_ucfg", n), &n, |b, &n| {
            b.iter(|| example4_ucfg(black_box(n)).size())
        });
    }
    g.finish();
}

fn bench_cnf_and_annotation(c: &mut Criterion) {
    let mut g = c.benchmark_group("transformations");
    for n in [3usize, 4, 5] {
        let gr = example4_ucfg(n);
        g.bench_with_input(BenchmarkId::new("cnf", n), &gr, |b, gr| {
            b.iter(|| CnfGrammar::from_grammar(black_box(gr)).size())
        });
        let cnf = CnfGrammar::from_grammar(&gr);
        g.bench_with_input(BenchmarkId::new("annotate", n), &cnf, |b, cnf| {
            b.iter(|| annotate(black_box(cnf), 2 * n).unwrap().cnf.size())
        });
        g.bench_with_input(BenchmarkId::new("to_circuit", n), &gr, |b, gr| {
            b.iter(|| grammar_to_circuit(black_box(gr)).unwrap().size())
        });
    }
    g.finish();
}

fn bench_dawg(c: &mut Criterion) {
    let mut g = c.benchmark_group("dawg_build");
    g.sample_size(20);
    for n in [5usize, 6, 7] {
        let mut sorted: Vec<String> =
            words::enumerate_ln(n).into_iter().map(|w| words::to_string(n, w)).collect();
        sorted.sort();
        g.bench_with_input(BenchmarkId::new("ln_words", n), &sorted, |b, sorted| {
            b.iter(|| {
                let mut builder = DawgBuilder::new(&['a', 'b']);
                for w in sorted {
                    builder.add(black_box(w));
                }
                builder.finish().state_count()
            })
        });
    }
    g.finish();
}

fn bench_nfa_construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("nfa_construction");
    for n in [32usize, 64, 128] {
        g.bench_with_input(BenchmarkId::new("pattern", n), &n, |b, &n| {
            b.iter(|| pattern_nfa(black_box(n)).transition_count())
        });
    }
    for n in [8usize, 16, 32] {
        g.bench_with_input(BenchmarkId::new("exact_product", n), &n, |b, &n| {
            b.iter(|| exact_nfa(black_box(n)).transition_count())
        });
    }
    g.finish();
}

fn bench_regex(c: &mut Criterion) {
    use ucfg_automata::regex::Regex;
    let mut g = c.benchmark_group("regex_glushkov");
    let patterns = [
        ("ln_pattern", "(a|b)*a(a|b)(a|b)(a|b)a(a|b)*"),
        ("nested_star", "((a|b)(ab)*b?)*"),
    ];
    for (name, pat) in patterns {
        let r = Regex::parse(pat).unwrap();
        g.bench_with_input(BenchmarkId::new("construct", name), &r, |b, r| {
            b.iter(|| black_box(r).glushkov().transition_count())
        });
        let nfa = r.glushkov();
        let word = "abababbaabab";
        g.bench_with_input(BenchmarkId::new("match", name), &nfa, |b, nfa| {
            b.iter(|| black_box(nfa).accepts(word))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_grammar_construction,
    bench_cnf_and_annotation,
    bench_dawg,
    bench_nfa_construction,
    bench_regex
);
criterion_main!(benches);
