//! Lower-bound machinery benches (experiments T5/T7/T8/T10 timing side):
//! the Proposition 7 extraction, discrepancy evaluation over 𝓛, the rank
//! certificates, and the Lemma 21 neat decomposition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use ucfg_core::discrepancy::{
    adversarial_rectangle, discrepancy, enumerate_family, random_family_rectangle,
};
use ucfg_core::extract::extract_cover;
use ucfg_core::ln_grammars::example4_ucfg;
use ucfg_core::neat::neat_decomposition;
use ucfg_core::partition::OrderedPartition;
use ucfg_core::rank::{rank_gf2, rank_mod_p};
use ucfg_grammar::normal_form::CnfGrammar;

fn bench_extraction(c: &mut Criterion) {
    let mut g = c.benchmark_group("prop7_extraction");
    g.sample_size(10);
    for n in [2usize, 3] {
        let cnf = CnfGrammar::from_grammar(&example4_ucfg(n));
        g.bench_with_input(BenchmarkId::new("example4_ucfg", n), &cnf, |b, cnf| {
            b.iter(|| extract_cover(black_box(cnf), 2 * n).unwrap().rectangles.len())
        });
    }
    g.finish();
}

fn bench_discrepancy(c: &mut Criterion) {
    let mut g = c.benchmark_group("discrepancy");
    for n in [8usize, 12, 16] {
        g.bench_with_input(BenchmarkId::new("enumerate_family", n), &n, |b, &n| {
            b.iter(|| enumerate_family(black_box(n)).len())
        });
        let mut rng = StdRng::seed_from_u64(1);
        let part = OrderedPartition::new(n, 1, n);
        let r = random_family_rectangle(n, part, &mut rng);
        g.bench_with_input(BenchmarkId::new("rectangle_discrepancy", n), &r, |b, r| {
            b.iter(|| discrepancy(n, black_box(r)))
        });
    }
    g.finish();
}

fn bench_adversarial(c: &mut Criterion) {
    let mut g = c.benchmark_group("adversarial_search");
    g.sample_size(10);
    for n in [8usize, 12] {
        g.bench_with_input(BenchmarkId::new("alternating_max", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(7);
                let part = OrderedPartition::new(n, 1, n);
                adversarial_rectangle(black_box(n), part, 2, &mut rng).1
            })
        });
    }
    g.finish();
}

fn bench_rank(c: &mut Criterion) {
    let mut g = c.benchmark_group("rank_bound");
    g.sample_size(10);
    for n in [6usize, 8, 10] {
        g.bench_with_input(BenchmarkId::new("gf2", n), &n, |b, &n| {
            b.iter(|| rank_gf2(black_box(n)))
        });
    }
    for n in [5usize, 7] {
        g.bench_with_input(BenchmarkId::new("mod_p", n), &n, |b, &n| {
            b.iter(|| rank_mod_p(black_box(n)))
        });
    }
    g.finish();
}

fn bench_neat(c: &mut Criterion) {
    let mut g = c.benchmark_group("neat_decomposition");
    for n in [8usize, 12] {
        let mut rng = StdRng::seed_from_u64(2);
        let part = OrderedPartition::new(n, 3, n + 2);
        let r = random_family_rectangle(n, part, &mut rng);
        g.bench_with_input(BenchmarkId::new("lemma21", n), &r, |b, r| {
            b.iter(|| neat_decomposition(black_box(r)).map(|d| d.pieces.len()))
        });
    }
    g.finish();
}

fn bench_greedy_covers(c: &mut Criterion) {
    use ucfg_core::greedy_cover::{greedy_disjoint_cover, greedy_disjoint_cover_middle_cut};
    let mut g = c.benchmark_group("greedy_cover");
    g.sample_size(10);
    for n in [4usize, 5] {
        g.bench_with_input(BenchmarkId::new("multi_partition", n), &n, |b, &n| {
            b.iter(|| greedy_disjoint_cover(black_box(n)).len())
        });
        g.bench_with_input(BenchmarkId::new("middle_cut", n), &n, |b, &n| {
            b.iter(|| greedy_disjoint_cover_middle_cut(black_box(n)).len())
        });
    }
    g.finish();
}

fn bench_degree_classification(c: &mut Criterion) {
    use ucfg_automata::degree::classify;
    use ucfg_automata::ln_nfa::{exact_nfa, pattern_nfa};
    let mut g = c.benchmark_group("nfa_degree");
    g.sample_size(10);
    for n in [3usize, 4] {
        let exact = exact_nfa(n);
        g.bench_with_input(BenchmarkId::new("exact_nfa", n), &exact, |b, a| {
            b.iter(|| classify(black_box(a)))
        });
        let pat = pattern_nfa(n);
        g.bench_with_input(BenchmarkId::new("pattern_nfa", n), &pat, |b, a| {
            b.iter(|| classify(black_box(a)))
        });
    }
    g.finish();
}

fn bench_fooling_and_exact_disc(c: &mut Criterion) {
    use ucfg_core::comm::greedy_fooling_set;
    use ucfg_core::discrepancy::exact_max_discrepancy;
    let mut g = c.benchmark_group("comm_bounds");
    g.sample_size(10);
    for n in [4usize, 6] {
        let part = OrderedPartition::new(n, 1, n);
        g.bench_with_input(BenchmarkId::new("greedy_fooling", n), &n, |b, &n| {
            b.iter(|| greedy_fooling_set(black_box(n), part).len())
        });
    }
    let part4 = OrderedPartition::new(4, 1, 4);
    g.bench_function("exact_max_discrepancy_n4", |b| {
        b.iter(|| exact_max_discrepancy(black_box(4), part4))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_extraction,
    bench_discrepancy,
    bench_adversarial,
    bench_rank,
    bench_neat,
    bench_greedy_covers,
    bench_degree_classification,
    bench_fooling_and_exact_disc
);
criterion_main!(benches);
