//! Thin wrapper: the suite body lives in `ucfg_bench::suites::stream_kernels`
//! so `cargo bench` and `ucfg orchestrate` run exactly the same code.
//! Run `-- --list` to enumerate benchmark ids without executing them.

fn main() {
    ucfg_bench::suites::harness_main("stream_kernels");
}
