//! Parsing benches: membership and parse-forest work on the paper's
//! grammars and automata (experiments F1/T1/T2 timing side).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ucfg_automata::ln_nfa::{exact_nfa, pattern_nfa};
use ucfg_core::ln_grammars::{appendix_a_grammar, example4_ucfg};
use ucfg_core::words;
use ucfg_grammar::cyk::CykChart;
use ucfg_grammar::earley::Earley;
use ucfg_grammar::normal_form::CnfGrammar;
use ucfg_grammar::parse_tree::FixedLenParser;

fn some_words(n: usize, how_many: usize) -> Vec<String> {
    // Deterministic mix of members and non-members of L_n.
    (0..how_many as u64)
        .map(|i| words::to_string(n, i.wrapping_mul(0x9e3779b97f4a7c15) & words::low_mask(2 * n)))
        .collect()
}

fn bench_cyk(c: &mut Criterion) {
    let mut g = c.benchmark_group("cyk_recognize");
    for n in [3usize, 4, 5] {
        let cnf = CnfGrammar::from_grammar(&example4_ucfg(n));
        let inputs: Vec<Vec<_>> =
            some_words(n, 16).iter().map(|w| cnf.encode(w).unwrap()).collect();
        g.bench_with_input(BenchmarkId::new("example4_ucfg", n), &inputs, |b, inputs| {
            b.iter(|| {
                let mut acc = 0usize;
                for w in inputs {
                    acc += usize::from(CykChart::build(black_box(&cnf), w).accepted());
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_cyk_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("cyk_count_trees");
    for n in [3usize, 4] {
        let cnf = CnfGrammar::from_grammar(&appendix_a_grammar(n));
        let all_a = cnf.encode(&"a".repeat(2 * n)).unwrap();
        g.bench_with_input(BenchmarkId::new("appendixA_all_a", n), &all_a, |b, w| {
            b.iter(|| CykChart::build(black_box(&cnf), w).count_trees())
        });
    }
    g.finish();
}

fn bench_fixed_len_parser(c: &mut Criterion) {
    let mut g = c.benchmark_group("fixed_len_parser");
    for n in [4usize, 6] {
        let gr = appendix_a_grammar(n);
        let parser = FixedLenParser::new(&gr).unwrap();
        let inputs: Vec<Vec<_>> =
            some_words(n, 16).iter().map(|w| gr.encode(w).unwrap()).collect();
        g.bench_with_input(BenchmarkId::new("appendixA_count", n), &inputs, |b, inputs| {
            b.iter(|| {
                let mut acc = 0u64;
                for w in inputs {
                    acc += parser.count_trees(black_box(w)).to_u64().unwrap_or(u64::MAX);
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_earley(c: &mut Criterion) {
    let mut g = c.benchmark_group("earley_recognize");
    for n in [3usize, 4] {
        let gr = appendix_a_grammar(n);
        let e = Earley::new(&gr);
        let inputs = some_words(n, 8);
        g.bench_with_input(BenchmarkId::new("appendixA", n), &inputs, |b, inputs| {
            b.iter(|| {
                let mut acc = 0usize;
                for w in inputs {
                    acc += usize::from(e.recognize_str(black_box(w)));
                }
                acc
            })
        });
    }
    g.finish();
}

fn bench_nfa(c: &mut Criterion) {
    let mut g = c.benchmark_group("nfa_accepts");
    for n in [8usize, 16, 32] {
        let pat = pattern_nfa(n);
        let exact = exact_nfa(n);
        let inputs = some_words(n, 32);
        g.bench_with_input(BenchmarkId::new("pattern", n), &inputs, |b, inputs| {
            b.iter(|| inputs.iter().filter(|w| pat.accepts(black_box(w))).count())
        });
        g.bench_with_input(BenchmarkId::new("exact", n), &inputs, |b, inputs| {
            b.iter(|| inputs.iter().filter(|w| exact.accepts(black_box(w))).count())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_cyk,
    bench_cyk_count,
    bench_fixed_len_parser,
    bench_earley,
    bench_nfa
);
criterion_main!(benches);
