//! The experiment suite: one function per table/figure of DESIGN.md §5.
//!
//! Each function returns the rendered table as a `String`; the `report`
//! binary prints them, and EXPERIMENTS.md records their output. Everything
//! here is *checked* computation — the functions assert the paper's claims
//! as they tabulate them, so `report` doubles as an end-to-end test.

use std::fmt::Write as _;
use ucfg_automata::convert::dfa_to_grammar;
use ucfg_automata::dawg::DawgBuilder;
use ucfg_automata::dfa::Dfa;
use ucfg_automata::ln_nfa::{exact_nfa, pattern_nfa};
use ucfg_core::cover::{self, example8_cover};
use ucfg_core::discrepancy;
use ucfg_core::extract::extract_cover;
use ucfg_core::ln_grammars::{
    appendix_a_grammar, example3_grammar, example4_size, example4_ucfg, naive_grammar,
};
use ucfg_core::partition::OrderedPartition;
use ucfg_core::rank;
use ucfg_core::separation::separation_row;
use ucfg_core::words;
use ucfg_factorized::convert::grammar_to_circuit;
use ucfg_factorized::csv_scenario::agreement_grammar;
use ucfg_factorized::join::{complete_chain, factorized_path_join, path_join_count};
use ucfg_grammar::annotated::annotate;
use ucfg_grammar::count::{decide_unambiguous, derivation_counts_by_length};
use ucfg_grammar::language::finite_language;
use ucfg_grammar::normal_form::CnfGrammar;
use ucfg_grammar::parse_tree::FixedLenParser;

/// The list of experiment ids, in report order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "F1", "F2", "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9", "T10", "T11", "T12", "T13",
    "T14", "T15", "T16", "T17", "T18", "T19", "T20", "T21", "T22", "T23", "T24",
];

/// Dispatch by experiment id. Under tracing, each experiment's wall time
/// records into a per-id `report.<id>` span (dynamic name, so it skips
/// the call-site handle cache of `obs::span!`).
pub fn run(id: &str) -> String {
    let _t = ucfg_support::obs::Span::start(&format!("report.{id}"));
    match id {
        "F1" => f1_parse_trees(),
        "F2" => f2_errata(),
        "T1" => t1_cfg_sizes(),
        "T2" => t2_nfa_sizes(),
        "T3" => t3_ucfg_sizes(),
        "T4" => t4_example3(),
        "T5" => t5_extraction(),
        "T6" => t6_lemma18(),
        "T7" => t7_discrepancy(),
        "T8" => t8_lower_bounds(),
        "T9" => t9_example8_cover(),
        "T10" => t10_neat(),
        "T11" => t11_transformations(),
        "T12" => t12_generic_upper_bound(),
        "T13" => t13_counting(),
        "T14" => t14_csv(),
        "T15" => t15_factorized_join(),
        "T16" => t16_greedy_covers(),
        "T17" => t17_bar_hillel_reduction(),
        "T18" => t18_exact_discrepancy(),
        "T19" => t19_protocols(),
        "T20" => t20_aggregation(),
        "T21" => t21_nfa_ambiguity_degrees(),
        "T22" => t22_complement(),
        "T23" => t23_leveled_profiles(),
        "T24" => t24_grammar_profiles(),
        other => format!("unknown experiment id: {other}\n"),
    }
}

fn header(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

/// F1 — Figure 1: two parse trees of `aaaaaa` in Example 3's G_1.
pub fn f1_parse_trees() -> String {
    let mut out = header("F1  Figure 1: two parse trees of aaaaaa in G_1 (Example 3)");
    let g = example3_grammar(1); // accepts L_3, words of length 6
    let parser = FixedLenParser::new(&g).expect("fixed-length grammar");
    let word = g.encode("aaaaaa").expect("word over {a,b}");
    let count = parser.count_trees(&word);
    let trees = parser.trees(&word, 2);
    assert!(trees.len() >= 2, "Figure 1 shows two distinct trees");
    let _ = writeln!(
        out,
        "#parse trees of aaaaaa: {count} (≥ 2 ⇒ G_n is ambiguous)\n"
    );
    for (i, t) in trees.iter().take(2).enumerate() {
        let _ = writeln!(out, "tree {}:\n{}", i + 1, t.render(&g));
    }
    out
}

/// T1 — Theorem 1(1): the Appendix A CFG has size Θ(log n).
pub fn t1_cfg_sizes() -> String {
    let mut out = header("T1  Theorem 1(1): CFG size for L_n is Θ(log n)");
    let _ = writeln!(out, "{:>8} {:>10} {:>12}", "n", "|CFG|", "|CFG|/log2(n)");
    for n in [2usize, 4, 8, 16, 64, 256, 1024, 4096, 65536, 1 << 20] {
        let g = appendix_a_grammar(n);
        let ratio = g.size() as f64 / (n as f64).log2();
        let _ = writeln!(out, "{:>8} {:>10} {:>12.2}", n, g.size(), ratio);
    }
    // Exhaustive language check for small n.
    for n in 1..=7 {
        let g = appendix_a_grammar(n);
        let lang = finite_language(&g).expect("finite");
        let expect: std::collections::BTreeSet<String> = words::enumerate_ln(n)
            .into_iter()
            .map(|w| words::to_string(n, w))
            .collect();
        assert_eq!(lang, expect, "L(G) = L_n failed at n={n}");
    }
    let _ = writeln!(out, "language verified exhaustively for n ≤ 7 ✓");
    out
}

/// T2 — Theorem 1(2): NFAs for L_n.
pub fn t2_nfa_sizes() -> String {
    let mut out = header("T2  Theorem 1(2): NFA sizes for L_n");
    let _ = writeln!(
        out,
        "{:>6} {:>14} {:>14} {:>16}",
        "n", "pattern(Θ(n))", "exact(Θ(n²))", "min-DFA states"
    );
    for n in [1usize, 2, 4, 8, 16, 32, 64] {
        let pat = pattern_nfa(n).transition_count();
        let exact = (n <= 32).then(|| exact_nfa(n).transition_count());
        let mindfa = (n <= 8).then(|| Dfa::from_nfa(&exact_nfa(n)).minimized().state_count());
        let _ = writeln!(
            out,
            "{:>6} {:>14} {:>14} {:>16}",
            n,
            pat,
            exact.map_or("-".into(), |v| v.to_string()),
            mindfa.map_or("-".into(), |v| v.to_string()),
        );
    }
    let _ = writeln!(
        out,
        "note: the Θ(n) figure is the guess-and-verify automaton, which accepts\n\
         exactly L_n among length-2n inputs (promise semantics); enforcing the\n\
         length inside the automaton costs Θ(n²) (see EXPERIMENTS.md)."
    );
    // Verify both semantics for small n.
    for n in 1..=5 {
        let exact = exact_nfa(n);
        for w in 0..(1u64 << (2 * n)) {
            let s = words::to_string(n, w);
            assert_eq!(exact.accepts(&s), words::ln_contains(n, w), "n={n}");
        }
    }
    let _ = writeln!(out, "exact NFA verified exhaustively for n ≤ 5 ✓");
    out
}

/// T3 — Theorem 1(3) upper side: the Example 4 uCFG is 2^Θ(n).
pub fn t3_ucfg_sizes() -> String {
    let mut out = header("T3  Example 4 uCFG: correct, unambiguous, size 2^Θ(n)");
    let _ = writeln!(
        out,
        "{:>4} {:>16} {:>16}",
        "n", "|uCFG| (built)", "closed form"
    );
    for n in 1..=12usize {
        let built = (n <= 10).then(|| example4_ucfg(n).size());
        let formula = example4_size(n as u64);
        if let Some(bs) = built {
            assert_eq!(formula.to_u64(), Some(bs as u64), "size formula n={n}");
        }
        let _ = writeln!(
            out,
            "{:>4} {:>16} {:>16}",
            n,
            built.map_or("-".into(), |v| v.to_string()),
            formula
        );
    }
    for n in [16u64, 32, 64] {
        let _ = writeln!(out, "{:>4} {:>16} {:>16}", n, "-", example4_size(n));
    }
    for n in 1..=5 {
        let g = example4_ucfg(n);
        assert!(decide_unambiguous(&g).is_unambiguous(), "uCFG check n={n}");
        let lang = finite_language(&g).unwrap();
        assert_eq!(
            lang.len() as u64,
            words::ln_size(n).to_u64().unwrap(),
            "n={n}"
        );
    }
    let _ = writeln!(out, "unambiguity + language verified for n ≤ 5 ✓");
    let _ = writeln!(
        out,
        "note: the paper's complement rule A_i → A_w a C A_w̄ a C loses (b,b)\n\
         pairs (e.g. baba ∈ L_2); we range over the 3^(i-1) disjoint-support\n\
         pairs instead — see DESIGN.md (erratum)."
    );
    out
}

/// T4 — Example 3: G_n accepts L_{2^n+1} with size Θ(n).
pub fn t4_example3() -> String {
    let mut out = header("T4  Example 3: G_n accepts L_{2^n+1}, size Θ(n)");
    let _ = writeln!(
        out,
        "{:>4} {:>12} {:>8} {:>12}",
        "n", "L index", "|G_n|", "6n+10?"
    );
    for n in 0..=20usize {
        let g = example3_grammar(n);
        assert_eq!(g.size(), 6 * n + 10, "size formula");
        let _ = writeln!(
            out,
            "{:>4} {:>12} {:>8} {:>12}",
            n,
            (1usize << n) + 1,
            g.size(),
            "✓"
        );
    }
    for n in 0..=2 {
        let g = example3_grammar(n);
        let target = (1usize << n) + 1;
        let lang = finite_language(&g).unwrap();
        let expect: std::collections::BTreeSet<String> = words::enumerate_ln(target)
            .into_iter()
            .map(|w| words::to_string(target, w))
            .collect();
        assert_eq!(lang, expect, "n={n}");
    }
    let _ = writeln!(out, "language verified for n ≤ 2 (words up to length 10) ✓");
    out
}

/// T5 — Proposition 7: rectangle extraction.
pub fn t5_extraction() -> String {
    let mut out = header("T5  Proposition 7: balanced-rectangle extraction");
    let _ = writeln!(
        out,
        "{:<22} {:>4} {:>6} {:>8} {:>9} {:>7} {:>9}",
        "grammar", "n", "ℓ", "n·|G|", "balanced", "covers", "disjoint"
    );
    let mut run_one = |name: &str, g: &ucfg_grammar::Grammar, n: usize, expect_disjoint: bool| {
        let cnf = CnfGrammar::from_grammar(g);
        let res = extract_cover(&cnf, 2 * n).expect("fixed-length grammar");
        let covered = res.covered_words();
        let expect: std::collections::BTreeSet<String> = words::enumerate_ln(n)
            .into_iter()
            .map(|w| words::to_string(n, w))
            .collect();
        let covers = covered == expect;
        let disjoint = res.is_disjoint();
        assert!(covers, "{name}: extraction must cover L_n");
        assert!(res.rectangles.len() <= res.bound, "{name}: ℓ ≤ n|G|");
        // Cross-check with the bitmap cover kernel (which also makes the
        // n = 5 row cheap: the word-level verdicts cost microseconds).
        let rep = cover::verify_cover(n, &cover::extraction_to_set_rectangles(n, &res));
        assert_eq!(rep.covers_exactly, covers, "{name}: bitmap verdict");
        assert_eq!(rep.disjoint, disjoint, "{name}: bitmap disjointness");
        if expect_disjoint {
            assert!(disjoint, "{name}: unambiguous input ⇒ disjoint cover");
        }
        let _ = writeln!(
            out,
            "{:<22} {:>4} {:>6} {:>8} {:>9} {:>7} {:>9}",
            name,
            n,
            res.rectangles.len(),
            res.bound,
            res.all_balanced(),
            covers,
            disjoint
        );
    };
    // n = 5 (2^10-word domain) is affordable since the cover verdicts
    // moved to the popcount bitmap kernel.
    for n in 2..=5 {
        run_one("example4 (uCFG)", &example4_ucfg(n), n, true);
    }
    for n in 2..=3 {
        run_one("naive (uCFG)", &naive_grammar(n), n, true);
    }
    for n in 2..=4 {
        run_one("appendixA (ambiguous)", &appendix_a_grammar(n), n, false);
    }
    out
}

/// T6 — Lemma 18: the exact counting identities.
pub fn t6_lemma18() -> String {
    let mut out = header("T6  Lemma 18: |𝓛|, |A|, |B|, |B∖L_n|, gap");
    let _ = writeln!(
        out,
        "{:>3} {:>12} {:>14} {:>14} {:>14} {:>14} {:>10}",
        "m", "|𝓛|=2^4m", "|A|", "|B|", "|B∖Ln|=12^m", "gap=12^m-8^m", ">2^(7m/2)"
    );
    for m in 1..=10u64 {
        let holds = discrepancy::lemma18_inequality_holds(m);
        let _ = writeln!(
            out,
            "{:>3} {:>12} {:>14} {:>14} {:>14} {:>14} {:>10}",
            m,
            discrepancy::family_size(m),
            discrepancy::a_size(m),
            discrepancy::b_size(m),
            discrepancy::b_outside_ln(m),
            discrepancy::gap(m),
            if holds { "✓" } else { "✗" }
        );
    }
    // Exhaustive cross-check for m ≤ 3.
    for m in 1..=3usize {
        let n = 4 * m;
        let fam = discrepancy::enumerate_family(n);
        assert_eq!(
            fam.len() as u64,
            discrepancy::family_size(m as u64).to_u64().unwrap()
        );
        let a = fam.iter().filter(|&&w| discrepancy::in_a(n, w)).count() as u64;
        assert_eq!(a, discrepancy::a_size(m as u64).to_u64().unwrap(), "m={m}");
    }
    let _ = writeln!(out, "counts verified exhaustively for m ≤ 3 ✓");
    let _ = writeln!(
        out,
        "the Lemma 18 inequality holds exactly from m = 4 (n = 16) on"
    );
    out
}

/// T7 — Lemmas 19/23: rectangle discrepancy bounds.
pub fn t7_discrepancy() -> String {
    use ucfg_support::rng::{SeedableRng, StdRng};
    let mut out = header("T7  Lemmas 19/23: per-rectangle discrepancy bounds");
    let mut rng = StdRng::seed_from_u64(20250705);
    let _ = writeln!(
        out,
        "{:>3} {:>14} {:>12} {:>12} {:>12} {:>14}",
        "n", "partition", "max|d| rnd", "max|d| adv", "2^3m (L19)", "2^(10m/3) ok"
    );
    for n in [4usize, 8, 12] {
        let m = (n / 4) as u64;
        // Fixed middle cut (Lemma 19).
        let mid = OrderedPartition::new(n, 1, n);
        let mut max_rnd = 0i64;
        for _ in 0..20 {
            let r = discrepancy::random_family_rectangle(n, mid, &mut rng);
            max_rnd = max_rnd.max(discrepancy::discrepancy(n, &r).abs());
        }
        let (_, adv) = discrepancy::adversarial_rectangle(n, mid, 3, &mut rng);
        let bound = discrepancy::lemma19_bound(m);
        assert!(
            ucfg_grammar::BigUint::from_u64(max_rnd.unsigned_abs()) <= bound
                && ucfg_grammar::BigUint::from_u64(adv.unsigned_abs()) <= bound,
            "Lemma 19 violated at n={n}"
        );
        let _ = writeln!(
            out,
            "{:>3} {:>14} {:>12} {:>12} {:>12} {:>14}",
            n,
            "[1,n]",
            max_rnd,
            adv,
            bound.to_string(),
            "-"
        );
        // All balanced ordered partitions (Lemma 23 regime).
        let mut worst = 0i64;
        for part in OrderedPartition::all_balanced(n) {
            for _ in 0..4 {
                let r = discrepancy::random_family_rectangle(n, part, &mut rng);
                let d = discrepancy::discrepancy(n, &r);
                assert!(
                    discrepancy::within_lemma23_bound(m, d),
                    "Lemma 23 violated at n={n}, {part:?}"
                );
                worst = worst.max(d.abs());
            }
        }
        let _ = writeln!(
            out,
            "{:>3} {:>14} {:>12} {:>12} {:>12} {:>14}",
            n, "all balanced", worst, "-", "-", "✓"
        );
    }
    out
}

/// T8 — Theorem 17 / Proposition 16: cover-size lower bounds.
pub fn t8_lower_bounds() -> String {
    let mut out = header("T8  Cover-size lower bounds: rank and discrepancy");
    let _ = writeln!(out, "{:>4} {:>14} {:>14}", "n", "rank GF(2)", "rank GF(p)");
    // n = 12 rides on the subset-enumeration row build (the old O(4^n)
    // construction stopped paying at 10).
    for n in [2usize, 4, 6, 8, 10, 12] {
        let g2 = rank::rank_gf2(n);
        assert_eq!(g2, (1 << n) - 1, "GF(2) rank");
        let gp = (n <= 8).then(|| rank::rank_mod_p(n));
        if let Some(v) = gp {
            assert_eq!(v, (1 << n) - 1);
        }
        let _ = writeln!(
            out,
            "{:>4} {:>14} {:>14}",
            n,
            g2,
            gp.map_or("-".into(), |v| v.to_string())
        );
    }
    let _ = writeln!(
        out,
        "⇒ any disjoint cover of L_n by [1,n]-rectangles needs ≥ 2^n − 1 rectangles\n"
    );
    let _ = writeln!(
        out,
        "{:>4} {:>6} {:>24} {:>24}",
        "n", "m", "log2 ℓ (Prop 16, multi)", "log2 ℓ (Thm 17, fixed)"
    );
    for m in [4u64, 8, 16, 32, 64, 128, 256] {
        let n = 4 * m;
        let multi = discrepancy::cover_lower_bound_log2(m);
        let fixed = discrepancy::fixed_partition_lower_bound_log2(m);
        assert!(multi > 0.0 && fixed > multi);
        let _ = writeln!(out, "{:>4} {:>6} {:>24.2} {:>24.2}", n, m, multi, fixed);
    }
    let _ = writeln!(
        out,
        "slope of the multi-partition bound ≈ log2(12) − 10/3 ≈ 0.2516 per m\n\
         ⇒ every uCFG for L_n has size 2^Ω(n) (Theorem 12 via Prop. 7)."
    );
    out
}

/// T9 — Example 8: the ambiguous cover of size n.
pub fn t9_example8_cover() -> String {
    let mut out = header("T9  Example 8: L_n as a union of n balanced rectangles");
    let _ = writeln!(
        out,
        "{:>3} {:>6} {:>8} {:>10} {:>12} {:>20}",
        "n", "ℓ", "covers", "disjoint", "max overlap", "overlap histogram"
    );
    for n in [3usize, 4, 5, 6] {
        let rects = example8_cover(n);
        let rep = cover::verify_cover(n, &rects);
        assert!(rep.covers_exactly && rep.all_balanced && !rep.disjoint);
        assert_eq!(rep.max_overlap, n);
        let hist = cover::overlap_histogram(n, &rects);
        let _ = writeln!(
            out,
            "{:>3} {:>6} {:>8} {:>10} {:>12} {:>20}",
            n,
            rep.size,
            rep.covers_exactly,
            rep.disjoint,
            rep.max_overlap,
            format!("{hist:?}")
        );
    }
    // The histogram has a closed form: hist[k] = C(n,k)·3^{n−k} (the
    // witness spectrum — pairs are independent).
    for n in [3usize, 4, 5, 6] {
        let hist = cover::overlap_histogram(n, &example8_cover(n));
        let spectrum = words::witness_spectrum(n);
        for (k, s) in spectrum.iter().enumerate().take(n + 1).skip(1) {
            assert_eq!(
                s.to_u64().unwrap() as usize,
                hist.get(k).copied().unwrap_or(0),
                "spectrum mismatch n={n} k={k}"
            );
        }
    }
    let _ = writeln!(
        out,
        "the histogram is exactly the witness spectrum C(n,k)·3^(n−k) ✓\n\
         the n-rectangle cover exists but is NOT disjoint — the whole point of\n\
         Theorem 12 is that disjointness forces 2^Ω(n) rectangles."
    );
    out
}

/// T10 — Lemma 21: neat decompositions.
pub fn t10_neat() -> String {
    use ucfg_support::rng::{SeedableRng, StdRng};
    let mut out = header("T10 Lemma 21: neat decomposition into ≤ 256 pieces");
    let mut rng = StdRng::seed_from_u64(31337);
    let _ = writeln!(
        out,
        "{:>3} {:>12} {:>10} {:>10} {:>8}",
        "n", "interval", "|R|", "pieces", "moved"
    );
    for n in [8usize, 12] {
        for part in OrderedPartition::all_balanced(n) {
            if part.is_neat() {
                continue;
            }
            let r = discrepancy::random_family_rectangle(n, part, &mut rng);
            let Some(dec) = ucfg_core::neat::neat_decomposition(&r) else {
                continue;
            };
            assert!(dec.pieces.len() <= 256);
            assert!(dec.partition.is_neat());
            let total: usize = dec.pieces.iter().map(|p| p.len()).sum();
            assert_eq!(total, r.len(), "pieces partition R");
            if part.i <= 3 {
                let _ = writeln!(
                    out,
                    "{:>3} {:>12} {:>10} {:>10} {:>8}",
                    n,
                    format!("[{},{}]", part.i, part.j),
                    r.len(),
                    dec.pieces.len(),
                    dec.moved_mask.count_ones()
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "all balanced non-neat partitions checked (n = 8, 12) ✓"
    );
    out
}

/// T11 — §2 transformations: CNF ≤ |G|², annotation ≤ n·|G|.
pub fn t11_transformations() -> String {
    let mut out = header("T11 CNF (≤ |G|²) and Lemma 10 annotation (≤ n·|G|)");
    let _ = writeln!(
        out,
        "{:<22} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "grammar", "|G|", "|CNF|", "|G|²", "|ann|", "2n·|CNF|"
    );
    let mut row = |name: &str, g: &ucfg_grammar::Grammar, two_n: usize| {
        let cnf = CnfGrammar::from_grammar(g);
        assert!(cnf.size() <= g.size() * g.size(), "{name}: CNF blowup");
        let ann = annotate(&cnf, two_n).expect("fixed length");
        assert!(
            ann.untrimmed_size <= two_n * cnf.size(),
            "{name}: annotation blowup"
        );
        // Derivation counts preserved per length (tree bijection).
        assert_eq!(
            derivation_counts_by_length(&cnf, two_n),
            derivation_counts_by_length(&ann.cnf, two_n),
            "{name}: Lemma 10 bijection"
        );
        let _ = writeln!(
            out,
            "{:<22} {:>8} {:>8} {:>10} {:>10} {:>10}",
            name,
            g.size(),
            cnf.size(),
            g.size() * g.size(),
            ann.untrimmed_size,
            two_n * cnf.size()
        );
    };
    for n in 2..=5 {
        row(&format!("appendixA n={n}"), &appendix_a_grammar(n), 2 * n);
    }
    for n in 2..=4 {
        row(&format!("example4 n={n}"), &example4_ucfg(n), 2 * n);
    }
    row("example3 n=1", &example3_grammar(1), 6);
    out
}

/// T12 — the generic CFG → uCFG upper-bound route via the DAWG.
pub fn t12_generic_upper_bound() -> String {
    let mut out = header("T12 Generic uCFG via DAWG (the [20] upper-bound route)");
    let _ = writeln!(
        out,
        "{:>3} {:>10} {:>8} {:>14} {:>14} {:>14}",
        "n", "|L_n|", "|CFG|", "|uCFG| (Ex.4)", "|uCFG| (DAWG)", "|naive|"
    );
    for n in 2..=9usize {
        let cfg = appendix_a_grammar(n).size();
        let ex4 = example4_size(n as u64);
        let mut words: Vec<String> = words::enumerate_ln(n)
            .into_iter()
            .map(|w| words::to_string(n, w))
            .collect();
        words.sort();
        let mut b = DawgBuilder::new(&['a', 'b']);
        for w in &words {
            b.add(w);
        }
        let dawg = b.finish();
        let dawg_g = dfa_to_grammar(&dawg).unwrap();
        if n <= 4 {
            assert!(
                decide_unambiguous(&dawg_g).is_unambiguous(),
                "DAWG grammar must be unambiguous"
            );
        }
        let naive = 2 * n as u64 * words::ln_size(n).to_u64().unwrap();
        let _ = writeln!(
            out,
            "{:>3} {:>10} {:>8} {:>14} {:>14} {:>14}",
            n,
            words.len(),
            cfg,
            ex4,
            dawg_g.size(),
            naive
        );
    }
    let _ = writeln!(
        out,
        "shape: |CFG| ~ log n, both uCFG routes grow exponentially — the\n\
         separation of Theorem 1, with Theorem 12 showing no uCFG can do better\n\
         than 2^Ω(n)."
    );
    out
}

/// T13 — counting: the algorithmic advantage of unambiguity.
pub fn t13_counting() -> String {
    let mut out = header("T13 Counting |L_n|: uCFG DP vs materialisation vs closed form");
    let _ = writeln!(
        out,
        "{:>3} {:>12} {:>14} {:>14} {:>14}",
        "n", "closed form", "uCFG deriv-DP", "circuit count", "NFA/DFA count"
    );
    for n in 2..=6usize {
        let expect = words::ln_size(n);
        // (a) derivation counting on the unambiguous grammar = word count.
        let cnf = CnfGrammar::from_grammar(&example4_ucfg(n));
        let dp = derivation_counts_by_length(&cnf, 2 * n).pop().unwrap();
        assert_eq!(dp, expect, "uCFG DP n={n}");
        // (b) deterministic circuit derivation count.
        let circ = grammar_to_circuit(&example4_ucfg(n)).unwrap();
        let cc = circ.count_derivations();
        assert_eq!(cc, expect, "circuit n={n}");
        // (c) automaton path count (subset-determinised).
        let nfa = exact_nfa(n);
        let ac = nfa.accepted_word_counts(2 * n).pop().unwrap();
        assert_eq!(ac, expect, "NFA n={n}");
        let _ = writeln!(
            out,
            "{:>3} {:>12} {:>14} {:>14} {:>14}",
            n, expect, dp, cc, ac
        );
    }
    let _ = writeln!(
        out,
        "counting is linear-time DP on the uCFG/deterministic circuit; on the\n\
         ambiguous CFG the same DP counts derivations, not words (#P-hard in\n\
         general) — see the `counting` bench for timings."
    );
    // Demonstrate the over-count on the ambiguous grammar.
    let n = 3;
    let amb = CnfGrammar::from_grammar(&appendix_a_grammar(n));
    let derivs = derivation_counts_by_length(&amb, 2 * n).pop().unwrap();
    let word_count = words::ln_size(n);
    assert!(derivs > word_count);
    let _ = writeln!(
        out,
        "ambiguous CFG, n=3: {derivs} derivations vs {word_count} words (over-count ✓)"
    );
    out
}

/// T14 — the CSV column-agreement scenario.
pub fn t14_csv() -> String {
    let mut out = header("T14 CSV column agreement: CFG linear, uCFG exponential in |S|");
    let alphabet = ['a', 'b'];
    let _ = writeln!(
        out,
        "{:>3} {:>10} {:>10} {:>14}",
        "c", "|Agree|", "|CFG|", "|uCFG| (DAWG)"
    );
    for c in 1..=8usize {
        let s_cols: Vec<usize> = (1..=c).collect();
        let g = agreement_grammar(c, &s_cols, &alphabet);
        // DAWG route for the unambiguous size.
        let lang = ucfg_factorized::csv_scenario::agreement_language(c, &s_cols, &alphabet);
        let mut sorted = lang.clone();
        sorted.sort();
        let mut b = DawgBuilder::new(&alphabet);
        for w in &sorted {
            b.add(w);
        }
        let dawg_g = dfa_to_grammar(&b.finish()).unwrap();
        let _ = writeln!(
            out,
            "{:>3} {:>10} {:>10} {:>14}",
            c,
            lang.len(),
            g.size(),
            dawg_g.size()
        );
    }
    let _ = writeln!(
        out,
        "the ambiguous CFG grows linearly in c (columns), the unambiguous\n\
         representation exponentially — the intro's reduction from L_n in action."
    );
    out
}

/// T15 — factorised joins vs materialisation.
pub fn t15_factorized_join() -> String {
    let mut out = header("T15 Factorised path join vs materialisation (Olteanu–Závodný gap)");
    let _ = writeln!(
        out,
        "{:>3} {:>3} {:>16} {:>16} {:>10}",
        "d", "k", "#result tuples", "factorised size", "determ."
    );
    for (d, k) in [(2u32, 4usize), (3, 5), (4, 6), (5, 8), (8, 10)] {
        let rels = complete_chain(d, k);
        let count = path_join_count(&rels);
        assert_eq!(
            count,
            ucfg_grammar::BigUint::small_pow(d as u64, k as u64 + 1)
        );
        let circ = factorized_path_join(&rels);
        assert_eq!(circ.count_derivations(), count);
        let det = if d as usize * k <= 30 {
            circ.is_unambiguous()
        } else {
            true
        };
        assert!(det);
        let _ = writeln!(
            out,
            "{:>3} {:>3} {:>16} {:>16} {:>10}",
            d,
            k,
            count,
            circ.size(),
            "✓"
        );
    }
    let _ = writeln!(
        out,
        "d-representations (≅ CFGs, by the KMN isomorphism implemented in\n\
         ucfg-factorized::convert) are exponentially smaller than the\n\
         materialised result — the motivation for studying CFG succinctness."
    );
    out
}

/// F2 — the two errata found by executing the paper's constructions.
pub fn f2_errata() -> String {
    use ucfg_core::ln_grammars::appendix_a_grammar_literal;
    let mut out = header("F2  Errata found by executing the paper's constructions");
    // Erratum 1: Example 4's complement rule loses (b,b) pairs.
    let _ = writeln!(
        out,
        "(1) Example 4: rule A_i → A_w a C_(n-i) A_w̄ a C_(n-i) forces position\n\
         j+n to be the exact complement of position j; minimality of the\n\
         first pair only forbids (a,a). Witness: baba ∈ L_2, not generable\n\
         with w̄. Fix: range over the 3^(i-1) pairs with disjoint a-support."
    );
    assert!(words::ln_contains(
        2,
        words::from_string(2, "baba").unwrap()
    ));
    let fixed = example4_ucfg(2);
    assert!(finite_language(&fixed).unwrap().contains("baba"));
    let _ = writeln!(
        out,
        "    fixed grammar generates baba ✓ (and is still a uCFG)"
    );

    // Erratum 2: Appendix A's single-orientation chain loses gaps.
    let n = 5;
    let literal = finite_language(&appendix_a_grammar_literal(n)).unwrap();
    let full: std::collections::BTreeSet<String> = words::enumerate_ln(n)
        .into_iter()
        .map(|w| words::to_string(n, w))
        .collect();
    let missing = format!("a{}a{}", "b".repeat(n - 1), "b".repeat(n - 1));
    assert!(literal.is_subset(&full) && !literal.contains(&missing));
    let _ = writeln!(
        out,
        "(2) Appendix A: the chain A_i → B_(i-1) A_(i-1) (one orientation)\n\
         only reaches gaps at the right end of each block. For n = {n} the\n\
         literal grammar generates {} of {} words; e.g. {missing} is missing.\n\
         Fix: both orientations, as in Example 3.",
        literal.len(),
        full.len()
    );
    let _ = writeln!(
        out,
        "    corrected grammar: exhaustively L(G) = L_n for n ≤ 7 ✓ (see T1)"
    );
    out
}

/// T16 — greedy disjoint covers: empirical upper bounds vs the lower
/// bounds.
pub fn t16_greedy_covers() -> String {
    use ucfg_core::greedy_cover::{greedy_disjoint_cover, greedy_disjoint_cover_middle_cut};
    let mut out = header("T16 Greedy disjoint rectangle covers vs lower bounds");
    let _ = writeln!(
        out,
        "{:>3} {:>10} {:>14} {:>16} {:>14}",
        "n", "ambiguous", "greedy (multi)", "greedy ([1,n])", "rank bound"
    );
    for n in [3usize, 4, 5, 6] {
        let multi = greedy_disjoint_cover(n);
        let rep = cover::verify_cover(n, &multi.rectangles);
        assert!(
            rep.covers_exactly && rep.disjoint && rep.all_balanced,
            "n={n}"
        );
        let mid = greedy_disjoint_cover_middle_cut(n);
        let rank_bound = (1usize << n) - 1;
        assert!(mid.len() >= rank_bound, "Theorem 17 must hold");
        let _ = writeln!(
            out,
            "{:>3} {:>10} {:>14} {:>16} {:>14}",
            n,
            n,
            multi.len(),
            mid.len(),
            rank_bound
        );
    }
    let _ = writeln!(
        out,
        "observed: the greedy [1,n]-cover meets the rank bound 2^n − 1 exactly\n\
         (Theorem 17 is tight here); allowing all balanced partitions helps\n\
         only polynomially — both disjoint covers dwarf the ambiguous size n."
    );
    out
}

/// T17 — the intro's reduction, executed: Agree ∩ encoded-domain ≅ L_n via
/// Bar-Hillel intersection (which preserves unambiguity).
pub fn t17_bar_hillel_reduction() -> String {
    use ucfg_automata::intersect::intersect_cnf_dfa;
    use ucfg_factorized::csv_scenario::{agreement_grammar, encode_ln_word};
    let mut out = header("T17 Reduction L_n → CSV agreement, via CFG ∩ DFA (Bar-Hillel)");
    let alphabet = ['a', 'c', 'd'];
    let _ = writeln!(
        out,
        "{:>3} {:>12} {:>12} {:>14} {:>10}",
        "n", "|Agree CFG|", "|∩ grammar|", "|L(∩)|=|L_n|", "verified"
    );
    for n in 2..=4usize {
        // Agree over {a,c,d} with S = [n].
        let s_cols: Vec<usize> = (1..=n).collect();
        let agree = agreement_grammar(n, &s_cols, &alphabet);
        let cnf = CnfGrammar::from_grammar(&agree);
        // DFA for the encoded domain: positions 1..n over {a,c},
        // positions n+1..2n over {a,d}.
        let dfa = encoded_domain_dfa(n);
        let inter = intersect_cnf_dfa(&cnf, &dfa);
        let lang = finite_language(&inter).unwrap();
        let expect: std::collections::BTreeSet<String> = words::enumerate_ln(n)
            .into_iter()
            .map(|w| encode_ln_word(n, w))
            .collect();
        assert_eq!(lang, expect, "the reduction image is exactly encoded L_n");
        let _ = writeln!(
            out,
            "{:>3} {:>12} {:>12} {:>14} {:>10}",
            n,
            agree.size(),
            inter.size(),
            lang.len(),
            "✓"
        );
    }
    let _ = writeln!(
        out,
        "CFG ∩ DFA preserves per-word derivation counts (D deterministic), so a\n\
         uCFG for Agree would give a uCFG for encoded L_n of comparable size —\n\
         hence by Theorem 12 every uCFG for the extraction task is 2^Ω(|S|)."
    );
    out
}

fn encoded_domain_dfa(n: usize) -> ucfg_automata::Dfa {
    // Chain over {a, c, d}: first half accepts {a, c}, second {a, d}.
    let alphabet = vec!['a', 'c', 'd'];
    let states = 2 * n + 1;
    let mut delta = vec![vec![None; 3]; states];
    for (p, row) in delta.iter_mut().enumerate().take(2 * n) {
        let next = Some((p + 1) as u32);
        row[0] = next; // 'a'
        if p < n {
            row[1] = next; // 'c'
        } else {
            row[2] = next; // 'd'
        }
    }
    let mut accepting = vec![false; states];
    accepting[2 * n] = true;
    ucfg_automata::Dfa::from_parts(alphabet, delta, 0, accepting)
}

/// T18 — exact maximum rectangle discrepancy (small n), sandwiching the
/// Lemma 19/23 bounds.
pub fn t18_exact_discrepancy() -> String {
    let mut out = header("T18 Exact max rectangle discrepancy vs the lemma bounds");
    let _ = writeln!(
        out,
        "{:>3} {:>12} {:>12} {:>12} {:>14}",
        "n", "partition", "exact max", "2^3m (L19)", "2^(10m/3) ok"
    );
    // n = 4: every balanced partition exactly.
    for n in [4usize] {
        let m = (n / 4) as u64;
        for part in OrderedPartition::all_balanced(n) {
            let exact = discrepancy::exact_max_discrepancy(n, part).expect("n=4 feasible");
            assert!(discrepancy::within_lemma23_bound(m, exact as i64));
            if part.i == 1 && part.j == n {
                assert!(exact <= 1 << (3 * m), "Lemma 19 exact");
            }
            let _ = writeln!(
                out,
                "{:>3} {:>12} {:>12} {:>12} {:>14}",
                n,
                format!("[{},{}]", part.i, part.j),
                exact,
                if part.i == 1 && part.j == n {
                    (1u64 << (3 * m)).to_string()
                } else {
                    "-".into()
                },
                "✓"
            );
        }
    }
    // Tightness of Lemma 19 at the middle cut.
    assert_eq!(
        discrepancy::exact_max_discrepancy(4, OrderedPartition::new(4, 1, 4)),
        Some(8),
        "Lemma 19 is attained at m = 1"
    );
    // n = 8: the neat partitions (16 side patterns each).
    let n = 8;
    let m = 2u64;
    for part in OrderedPartition::all_balanced(n) {
        if !part.is_neat() {
            continue;
        }
        if let Some(exact) = discrepancy::exact_max_discrepancy(n, part) {
            assert!(discrepancy::within_lemma23_bound(m, exact as i64));
            let _ = writeln!(
                out,
                "{:>3} {:>12} {:>12} {:>12} {:>14}",
                n,
                format!("[{},{}]", part.i, part.j),
                exact,
                if part.i == 1 && part.j == n {
                    (1u64 << (3 * m)).to_string()
                } else {
                    "-".into()
                },
                "✓"
            );
        }
    }
    let _ = writeln!(
        out,
        "observed: the Lemma 19 bound 2^(3m) is attained EXACTLY by the middle\n\
         cut (8 at m=1, 64 at m=2) — the lemma is tight; shifted partitions\n\
         exceed 2^(3m) slightly but stay within Lemma 23's 2^(10m/3), which is\n\
         therefore near-tight as well."
    );
    out
}

/// T19 — the protocol view: nondeterministic vs unambiguous communication
/// for set intersection, with per-partition rank and fooling-set bounds.
pub fn t19_protocols() -> String {
    use ucfg_core::comm::{canonical_fooling_set, fooling_bound, NondetProtocol};
    use ucfg_core::greedy_cover::{
        certified_exact_middle_cut_cover_number, greedy_disjoint_cover_middle_cut,
    };
    use ucfg_core::rank::rank_for_partition;
    let mut out = header("T19 Communication protocols for intersection (= L_n)");
    let _ = writeln!(
        out,
        "{:>3} {:>14} {:>16} {:>12} {:>12} {:>12}",
        "n", "nondet bits", "unambig bits", "fooling", "rank [1,n]", "exact ℓ*"
    );
    for n in [3usize, 4, 5] {
        let nondet = NondetProtocol::from_cover(example8_cover(n));
        assert!(nondet.computes_ln(n));
        let unamb = NondetProtocol::from_cover(greedy_disjoint_cover_middle_cut(n).rectangles);
        assert!(unamb.computes_ln(n) && unamb.is_unambiguous(n));
        let part = OrderedPartition::new(n, 1, n);
        let fool = fooling_bound(n, part);
        assert!(fool >= canonical_fooling_set(n).len());
        let rank = rank_for_partition(n, part);
        let exact = certified_exact_middle_cut_cover_number(n);
        let _ = writeln!(
            out,
            "{:>3} {:>14} {:>16} {:>12} {:>12} {:>12}",
            n,
            nondet.cost_bits(),
            unamb.cost_bits(),
            fool,
            rank,
            exact.map_or("?".into(), |v| v.to_string())
        );
    }
    let _ = writeln!(
        out,
        "nondeterministic certificates cost ⌈log₂ n⌉ bits (Example 8); the\n\
         unambiguous protocol pays ~n bits — greedy upper bound meets the rank\n\
         lower bound, so the exact unambiguous [1,n]-cover number is 2^n − 1.\n\
         Per-partition GF(2) ranks for shifted cuts (n = 4):"
    );
    for part in OrderedPartition::all_balanced(4) {
        let r = rank_for_partition(4, part);
        let _ = writeln!(out, "    [{},{}]: rank {r}", part.i, part.j);
    }
    out
}

/// T20 — semiring aggregation over grammars and circuits (the
/// factorised-DB payoff of deterministic representations).
pub fn t20_aggregation() -> String {
    use ucfg_grammar::weighted::{inside_at, Count, MinPlus, TableWeights, UnitWeights};
    let mut out = header("T20 Semiring aggregation on uCFGs and deterministic circuits");
    let _ = writeln!(
        out,
        "{:>3} {:>12} {:>14} {:>16} {:>16}",
        "n", "|L_n| (DP)", "min #a (trop)", "max prob word", "lex min/max"
    );
    for n in 2..=5usize {
        let ucfg = CnfGrammar::from_grammar(&example4_ucfg(n));
        // Counting.
        let Count(cnt) = inside_at(&ucfg, &UnitWeights, 2 * n);
        assert_eq!(cnt, words::ln_size(n));
        // Tropical: cost 1 per 'a', 0 per 'b' → minimum #a over L_n = 2.
        let w = TableWeights(vec![MinPlus(Some(1)), MinPlus(Some(0))]);
        let min_a = inside_at(&ucfg, &w, 2 * n);
        assert_eq!(
            min_a,
            MinPlus(Some(2)),
            "every word needs its two witnesses"
        );
        // Ordering on the deterministic circuit.
        let circ = grammar_to_circuit(&example4_ucfg(n)).unwrap();
        let lo = ucfg_factorized::ordering::lex_extreme(&circ, true).unwrap();
        let hi = ucfg_factorized::ordering::lex_extreme(&circ, false).unwrap();
        assert!(words::ln_contains(n, words::from_string(n, &lo).unwrap()));
        assert!(words::ln_contains(n, words::from_string(n, &hi).unwrap()));
        // Viterbi-style best word under P(a) = 0.4, P(b) = 0.6: the most
        // likely word uses exactly two a's.
        let best = {
            use ucfg_grammar::weighted::Viterbi;
            let w = TableWeights(vec![Viterbi(0.4), Viterbi(0.6)]);
            inside_at(&ucfg, &w, 2 * n).0
        };
        let expect = 0.4f64.powi(2) * 0.6f64.powi(2 * n as i32 - 2);
        assert!((best - expect).abs() < 1e-12, "n={n}: {best} vs {expect}");
        let _ = writeln!(
            out,
            "{:>3} {:>12} {:>14} {:>16.6} {:>16}",
            n,
            cnt,
            2,
            best,
            format!("{lo}/{hi}")
        );
    }
    let _ = writeln!(
        out,
        "all aggregates are linear-time DPs on the unambiguous representation —\n\
         on ambiguous ones the same DPs aggregate over derivations instead of\n\
         words (wrong for counting; see T13)."
    );
    out
}

/// T21 — ambiguity-degree classification of the automata in play.
pub fn t21_nfa_ambiguity_degrees() -> String {
    use ucfg_automata::degree::{ambiguity_growth, classify, AmbiguityClass};
    use ucfg_automata::regex::Regex;
    let mut out = header("T21 NFA ambiguity degrees (Weber–Seidl EDA/IDA criteria)");
    let _ = writeln!(
        out,
        "{:<34} {:>14} {:>22}",
        "automaton", "class", "amb growth ℓ=0..6"
    );
    let mut row = |name: &str, nfa: &ucfg_automata::Nfa, expect: AmbiguityClass| {
        let cls = classify(nfa);
        assert_eq!(cls, expect, "{name}");
        let growth = ambiguity_growth(nfa, 6);
        let _ = writeln!(
            out,
            "{:<34} {:>14} {:>22}",
            name,
            format!("{cls:?}"),
            format!("{growth:?}")
        );
    };
    row(
        "DAWG(L_3) (DFA)",
        &ucfg_automata::convert::dfa_to_nfa(&{
            let mut words: Vec<String> = words::enumerate_ln(3)
                .into_iter()
                .map(|w| words::to_string(3, w))
                .collect();
            words.sort();
            let mut b = DawgBuilder::new(&['a', 'b']);
            for w in &words {
                b.add(w);
            }
            b.finish()
        }),
        AmbiguityClass::Unambiguous,
    );
    row(
        "exact_nfa(3) (acyclic)",
        &exact_nfa(3),
        AmbiguityClass::Finite,
    );
    row(
        "pattern_nfa(3) (loops)",
        &pattern_nfa(3),
        AmbiguityClass::Polynomial,
    );
    row(
        "Glushkov((a|a)a*)",
        &Regex::parse("(a|a)a*").unwrap().glushkov(),
        AmbiguityClass::Finite,
    );
    row(
        "Glushkov((a*)(a*))",
        &Regex::parse("a*a*").unwrap().glushkov(),
        AmbiguityClass::Polynomial,
    );
    row(
        "Glushkov((a|aa)*)",
        &Regex::parse("(a|aa)*").unwrap().glushkov(),
        AmbiguityClass::Exponential,
    );
    let _ = writeln!(
        out,
        "the unambiguity hierarchy of the automata world (survey [11] in the\n\
         paper): the L_n automata sit exactly where the theory predicts —\n\
         deterministic, acyclic-finite, and guess-loop-polynomial."
    );
    out
}

/// T22 — complementation (the conclusion's open problem, measured).
///
/// `co-L_n` (= set disjointness) within `Σ^{2n}`: how do unambiguous
/// representations of the complement compare? The DISJ matrix has **full**
/// rank `2^n`, so disjoint `[1,n]`-covers of the complement need `2^n`
/// rectangles — the complement is at least as hard, and the data shows the
/// DAWG of `co-L_n` tracking the DAWG of `L_n` closely.
pub fn t22_complement() -> String {
    use ucfg_core::rank::gf2_rank_of_rows;
    let mut out = header("T22 Complementation: co-L_n = set disjointness");
    let _ = writeln!(
        out,
        "{:>3} {:>12} {:>12} {:>14} {:>14} {:>12}",
        "n", "|co-L_n|=3^n", "rank DISJ", "DAWG(L_n)", "DAWG(co-L_n)", "minDFA(co)"
    );
    for n in 2..=8usize {
        // Full-rank certificate for the complement (n ≤ 10).
        let rank = if n <= 10 {
            let size = 1usize << n;
            let width = size.div_ceil(64);
            let mut rows: Vec<Vec<u64>> = (0..size as u64)
                .map(|x| {
                    let mut row = vec![0u64; width];
                    for y in 0..size as u64 {
                        if x & y == 0 {
                            row[(y / 64) as usize] |= 1u64 << (y % 64);
                        }
                    }
                    row
                })
                .collect();
            let r = gf2_rank_of_rows(&mut rows);
            assert_eq!(r, size, "DISJ has full rank");
            Some(r)
        } else {
            None
        };
        // DAWG sizes of both languages.
        let dawg_size = |words: Vec<String>| {
            let mut sorted = words;
            sorted.sort();
            let mut b = DawgBuilder::new(&['a', 'b']);
            for w in &sorted {
                b.add(w);
            }
            dfa_to_grammar(&b.finish()).unwrap().size()
        };
        let ln_words: Vec<String> = words::enumerate_ln(n)
            .into_iter()
            .map(|w| words::to_string(n, w))
            .collect();
        let co_words: Vec<String> = words::enumerate_ln_complement(n)
            .into_iter()
            .map(|w| words::to_string(n, w))
            .collect();
        assert_eq!(co_words.len() as u64, 3u64.pow(n as u32));
        let d_ln = dawg_size(ln_words);
        let d_co = dawg_size(co_words);
        // Minimal DFA of the complement within Σ^{2n}.
        let min_co = (n <= 6).then(|| {
            Dfa::from_nfa(&exact_nfa(n))
                .complement_within_length(2 * n)
                .minimized()
                .state_count()
        });
        let _ = writeln!(
            out,
            "{:>3} {:>12} {:>12} {:>14} {:>14} {:>12}",
            n,
            3u64.pow(n as u32),
            rank.map_or("-".into(), |v| v.to_string()),
            d_ln,
            d_co,
            min_co.map_or("-".into(), |v| v.to_string())
        );
    }
    let _ = writeln!(
        out,
        "DISJ has FULL rank 2^n ⇒ a disjoint [1,n]-cover of co-L_n needs 2^n\n\
         rectangles (one more than L_n's 2^n − 1): under the fixed partition,\n\
         complementation does not help unambiguous representations — empirical\n\
         context for the conclusion's open question on uCFG complementation."
    );
    out
}

/// T23 — leveled profiles: the per-position structure behind the NFA
/// sizes of T2.
pub fn t23_leveled_profiles() -> String {
    use ucfg_automata::leveled::{fooling_profile, nfa_state_lower_bound, residual_profile};
    let mut out = header("T23 Leveled profiles of L_n: DFA widths and NFA fooling bounds");
    for n in [3usize, 4, 5] {
        let words: std::collections::BTreeSet<Vec<ucfg_grammar::Terminal>> = words::enumerate_ln(n)
            .into_iter()
            .map(|w| {
                (0..2 * n)
                    .map(|i| ucfg_grammar::Terminal(u16::from(w >> i & 1 == 0)))
                    .collect()
            })
            .collect();
        let res = residual_profile(&words, 2 * n);
        let fool = fooling_profile(n);
        assert!(fool[n] >= n, "canonical fooling set survives");
        let _ = writeln!(out, "n = {n}:");
        let _ = writeln!(out, "  minimal-DFA widths per level: {res:?}");
        let _ = writeln!(out, "  NFA fooling bounds per level: {fool:?}");
        let bound = nfa_state_lower_bound(n);
        let states = ucfg_automata::ln_nfa::exact_nfa(n).state_count();
        assert!(bound <= states);
        assert_eq!(
            bound, states,
            "observed: the fooling bound is tight for our construction (n ≤ 5)"
        );
        let _ = writeln!(
            out,
            "  Σ fooling = {bound} = exact NFA states = {states} → construction is state-MINIMAL"
        );
    }
    let _ = writeln!(
        out,
        "states of a trimmed NFA for a fixed-length language are time-sliced;\n\
         the per-level fooling sets certify Ω(n²) states for the exact L_n\n\
         automaton — and meet our construction exactly, certifying it\n\
         state-minimal (n ≤ 5). The promise automaton of Theorem 1(2) stays\n\
         Θ(n). The DFA width profile peaks at 2^n − 1 at the middle cut —\n\
         the same place (and the same number!) where the rank bound bites."
    );
    out
}

/// T24 — structural profiles of all the paper's grammars (the two size
/// measures side by side — the related-work contrast with Bucher et al.,
/// who count rules instead of summed body lengths).
pub fn t24_grammar_profiles() -> String {
    use ucfg_core::ln_grammars::appendix_a_grammar_literal;
    use ucfg_grammar::metrics::metrics;
    let mut out = header("T24 Grammar profiles: |G| = Σ|rhs| vs #rules (Bucher et al.)");
    let _ = writeln!(
        out,
        "{:<24} {:>7} {:>7} {:>6} {:>8} {:>8} {:>9} {:>6}",
        "grammar", "Σ|rhs|", "#rules", "#NT", "max|rhs|", "fan-out", "min depth", "fixed"
    );
    let mut row = |name: &str, g: &ucfg_grammar::Grammar| {
        let m = metrics(g);
        let _ = writeln!(
            out,
            "{:<24} {:>7} {:>7} {:>6} {:>8} {:>8} {:>9} {:>6}",
            name,
            m.size,
            m.rule_count,
            m.nonterminal_count,
            m.max_rule_len,
            m.max_fanout,
            m.min_tree_depth.map_or("-".into(), |d| d.to_string()),
            m.fixed_length
        );
    };
    row("example3 n=4", &example3_grammar(4));
    row("appendixA n=8", &appendix_a_grammar(8));
    row("appendixA n=256", &appendix_a_grammar(256));
    row("appendixA-literal n=5", &appendix_a_grammar_literal(5));
    row("example4 n=4", &example4_ucfg(4));
    row("example4 n=6", &example4_ucfg(6));
    row("naive n=3", &naive_grammar(3));
    let _ = writeln!(
        out,
        "note how #rules alone hides the blow-up: the naive grammar's rules are\n\
         long (max|rhs| = 2n) while example4's are short but numerous — only the\n\
         summed measure (= factorised-representation size) compares them fairly."
    );
    out
}

/// Run every experiment, concatenated (the full report).
pub fn full_report() -> String {
    let mut out = String::new();
    out.push_str(
        "ucfg-lb experiment report — every table/figure of the paper's claims\n\
         (see DESIGN.md §5 for the index, EXPERIMENTS.md for discussion)\n",
    );
    for id in ALL_EXPERIMENTS {
        out.push_str(&run(id));
    }
    // Headline separation summary (the KMN conjecture, Theorem 1).
    out.push_str(&header(
        "SUMMARY  Theorem 1: the double-exponential separation",
    ));
    let _ = writeln!(
        out,
        "{:>6} {:>8} {:>10} {:>18} {:>14}",
        "n", "|CFG|", "NFA(Θn)", "uCFG (Ex.4 size)", "uCFG ≥ 2^…"
    );
    for n in [4usize, 8, 16, 32, 64, 128] {
        let row = separation_row(n, 0, 0);
        let lb = row
            .ucfg_lower_bound_log2
            .map_or("-".into(), |v| format!("2^{v:.1}"));
        let _ = writeln!(
            out,
            "{:>6} {:>8} {:>10} {:>18} {:>14}",
            n,
            row.cfg_size,
            row.nfa_pattern_transitions,
            format!("≈2^{:.1}", row.ucfg_example4_size.log2_approx()),
            lb
        );
    }
    out.push_str(
        "\nCFG ~ Θ(log n); every uCFG ≥ 2^Ω(n): a CFG can be doubly-exponentially\n\
         smaller than any uCFG for the same finite language (KMN conjecture ✓).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Each experiment is self-asserting; running it IS the test.
    #[test]
    fn f1_runs() {
        let r = f1_parse_trees();
        assert!(r.contains("tree 1"));
        assert!(r.contains("tree 2"));
    }

    #[test]
    fn t1_runs() {
        assert!(t1_cfg_sizes().contains("verified"));
    }

    #[test]
    fn t2_runs() {
        assert!(t2_nfa_sizes().contains("promise"));
    }

    #[test]
    fn t3_runs() {
        assert!(t3_ucfg_sizes().contains("erratum"));
    }

    #[test]
    fn t4_runs() {
        assert!(t4_example3().contains("verified"));
    }

    #[test]
    fn t5_runs() {
        assert!(t5_extraction().contains("example4"));
    }

    #[test]
    fn t6_runs() {
        assert!(t6_lemma18().contains("m = 4"));
    }

    #[test]
    fn t7_runs() {
        assert!(t7_discrepancy().contains("[1,n]"));
    }

    #[test]
    fn t8_runs() {
        assert!(t8_lower_bounds().contains("2^Ω(n)"));
    }

    #[test]
    fn t9_runs() {
        assert!(t9_example8_cover().contains("NOT disjoint"));
    }

    #[test]
    fn t10_runs() {
        assert!(t10_neat().contains("checked"));
    }

    #[test]
    fn t11_runs() {
        assert!(t11_transformations().contains("appendixA"));
    }

    #[test]
    fn t12_runs() {
        assert!(t12_generic_upper_bound().contains("DAWG"));
    }

    #[test]
    fn t13_runs() {
        assert!(t13_counting().contains("over-count"));
    }

    #[test]
    fn t14_runs() {
        assert!(t14_csv().contains("reduction"));
    }

    #[test]
    fn t15_runs() {
        assert!(t15_factorized_join().contains("KMN"));
    }

    #[test]
    fn f2_runs() {
        assert!(f2_errata().contains("baba"));
    }

    #[test]
    fn t16_runs() {
        assert!(t16_greedy_covers().contains("rank bound"));
    }

    #[test]
    fn t17_runs() {
        assert!(
            t17_bar_hillel_reduction().contains("Bar-Hillel")
                || t17_bar_hillel_reduction().contains("uCFG")
        );
    }

    #[test]
    fn t18_runs() {
        assert!(t18_exact_discrepancy().contains("exact"));
    }

    #[test]
    fn t19_runs() {
        assert!(t19_protocols().contains("nondeterministic certificates"));
    }

    #[test]
    fn t20_runs() {
        assert!(t20_aggregation().contains("linear-time DPs"));
    }

    #[test]
    fn t21_runs() {
        assert!(t21_nfa_ambiguity_degrees().contains("Polynomial"));
    }

    #[test]
    fn t22_runs() {
        assert!(t22_complement().contains("FULL rank"));
    }

    #[test]
    fn t23_runs() {
        assert!(t23_leveled_profiles().contains("time-sliced"));
    }

    #[test]
    fn t24_runs() {
        assert!(t24_grammar_profiles().contains("Σ|rhs|"));
    }

    #[test]
    fn dispatch_covers_all_ids() {
        for id in ALL_EXPERIMENTS {
            assert!(!run(id).contains("unknown experiment"), "{id}");
        }
        assert!(run("bogus").contains("unknown"));
    }
}
