//! Emits the headline figure data as CSV for plotting: the Theorem 1
//! separation over a dense `n`-sweep. The CSV goes to stdout and to
//! `out/separation_sweep.csv` (override the directory with
//! `$UCFG_OUT_DIR`).
//!
//! Usage:
//!   sweep                  # CSV to stdout + out/separation_sweep.csv
//!   sweep 512              # sweep up to the given n (default 256)
//!   sweep --kernels        # bitmap-kernel sweep (default max n 16) to
//!                          # stdout + out/kernel_sweep.csv
//!   sweep --threads 4      # worker threads (default: $UCFG_THREADS,
//!                          # else available cores)
//!
//! Columns: n, |L_n| (log2), CFG size, pattern-NFA transitions, exact-NFA
//! transitions, DAWG-uCFG size, Example 4 uCFG size (log2), Proposition 16
//! uCFG lower bound (log2). Fields not computed at a given `n` render as
//! the `NA` sentinel, so every row has the full column count.
//!
//! The sweep is deterministic: the same `n` ceiling yields a
//! byte-identical CSV regardless of the thread count.

use ucfg_bench::sweep::{kernel_sweep_csv, sweep_csv};
use ucfg_support::bench::out_dir;

fn main() {
    let mut max_n: Option<usize> = None;
    let mut kernels = false;
    let mut threads = ucfg_support::par::thread_count();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" | "-j" => {
                if let Some(v) = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok().filter(|&t| t >= 1))
                {
                    threads = v;
                    // Propagate to UCFG_THREADS so kernels that default to
                    // par::thread_count() honour the flag too.
                    ucfg_support::par::set_thread_count(v);
                }
            }
            "--kernels" => kernels = true,
            other => {
                if let Ok(v) = other.parse() {
                    max_n = Some(v);
                }
            }
        }
    }
    let (csv, file) = if kernels {
        // The exhaustive columns cap themselves (NA above their
        // thresholds), so the default ceiling just bounds the cheap ones.
        (
            kernel_sweep_csv(max_n.unwrap_or(16), threads),
            "kernel_sweep.csv",
        )
    } else {
        (
            sweep_csv(max_n.unwrap_or(256), threads),
            "separation_sweep.csv",
        )
    };
    print!("{csv}");
    let dir = out_dir();
    let path = dir.join(file);
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &csv)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("sweep written to {}", path.display());
    }
}
