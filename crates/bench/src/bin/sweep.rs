//! Emits the headline figure data as CSV for plotting: the Theorem 1
//! separation over a dense `n`-sweep. The CSV goes to stdout and to
//! `out/separation_sweep.csv` (override the directory with
//! `$UCFG_OUT_DIR`).
//!
//! Usage:
//!   sweep                  # CSV to stdout + out/separation_sweep.csv
//!   sweep 512              # sweep up to the given n (default 256)
//!   sweep --threads 4      # worker threads (default: $UCFG_THREADS,
//!                          # else available cores)
//!
//! Columns: n, |L_n| (log2), CFG size, pattern-NFA transitions, exact-NFA
//! transitions, DAWG-uCFG size, Example 4 uCFG size (log2), Proposition 16
//! uCFG lower bound (log2). Fields not computed at a given `n` render as
//! the `NA` sentinel, so every row has the full column count.
//!
//! The sweep is deterministic: the same `n` ceiling yields a
//! byte-identical CSV regardless of the thread count.

use ucfg_bench::sweep::sweep_csv;
use ucfg_support::bench::out_dir;

fn main() {
    let mut max_n = 256usize;
    let mut threads = ucfg_support::par::thread_count();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" | "-j" => {
                if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                    threads = v;
                }
            }
            other => {
                if let Ok(v) = other.parse() {
                    max_n = v;
                }
            }
        }
    }
    let csv = sweep_csv(max_n, threads);
    print!("{csv}");
    let dir = out_dir();
    let path = dir.join("separation_sweep.csv");
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &csv)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("sweep written to {}", path.display());
    }
}
