//! Emits the headline figure data as CSV for plotting: the Theorem 1
//! separation over a dense `n`-sweep.
//!
//! Usage:
//!   sweep              # CSV to stdout
//!   sweep 512          # sweep up to the given n (default 256)
//!
//! Columns: n, |L_n| (log2), CFG size, pattern-NFA transitions, exact-NFA
//! transitions (when computed), DAWG-uCFG size (when computed), Example 4
//! uCFG size (log2), Proposition 16 uCFG lower bound (log2).

use ucfg_core::separation::separation_row;

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    println!(
        "n,ln_size_log2,cfg_size,nfa_pattern,nfa_exact,ucfg_dawg,ucfg_example4_log2,ucfg_lower_bound_log2"
    );
    let mut n = 2usize;
    while n <= max_n {
        let row = separation_row(n, 24, 9);
        println!(
            "{},{:.3},{},{},{},{},{:.3},{}",
            n,
            row.language_size.log2_approx(),
            row.cfg_size,
            row.nfa_pattern_transitions,
            row.nfa_exact_transitions.map_or(String::new(), |v| v.to_string()),
            row.ucfg_dawg_size.map_or(String::new(), |v| v.to_string()),
            row.ucfg_example4_size.log2_approx(),
            row.ucfg_lower_bound_log2.map_or(String::new(), |v| format!("{v:.3}")),
        );
        // Dense for small n, then powers of two.
        n = if n < 16 {
            n + 2
        } else if n < 64 {
            n + 8
        } else {
            n * 2
        };
    }
}
