//! Emits the headline figure data as CSV for plotting: the Theorem 1
//! separation over a dense `n`-sweep. The CSV goes to stdout and to
//! `out/separation_sweep.csv` (override the directory with
//! `$UCFG_OUT_DIR`).
//!
//! Usage:
//!   sweep                  # CSV to stdout + out/separation_sweep.csv
//!   sweep 512              # sweep up to the given n (default 256)
//!   sweep --kernels        # bitmap-kernel sweep (default max n 16) to
//!                          # stdout + out/kernel_sweep.csv
//!   sweep --threads 4      # worker threads (default: $UCFG_THREADS,
//!                          # else available cores); also -j 4,
//!                          # --threads=4, -j4
//!   sweep --chunk-bits N   # stream wordset kernels in N-bit chunks
//!                          # (sets UCFG_WORDSET_CHUNK and forces the
//!                          # chunked path below the cap); also
//!                          # --chunk-bits=N
//!   sweep --trace          # kernel metrics (or UCFG_TRACE=1): summary
//!                          # table to stderr + out/METRICS_sweep.json
//!
//! Columns: n, |L_n| (log2), CFG size, pattern-NFA transitions, exact-NFA
//! transitions, DAWG-uCFG size, Example 4 uCFG size (log2), Proposition 16
//! uCFG lower bound (log2). Fields not computed at a given `n` render as
//! the `NA` sentinel, so every row has the full column count.
//!
//! The sweep is deterministic: the same `n` ceiling yields a
//! byte-identical CSV regardless of the thread count — and so is the
//! non-`"volatile"` section of the metrics JSON, which the CI
//! determinism job byte-compares across `UCFG_THREADS` settings.

use ucfg_bench::sweep::{kernel_sweep_csv, sweep_csv};
use ucfg_support::bench::out_dir;
use ucfg_support::{obs, par};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (raw, trace) = obs::strip_trace_flag(&raw);
    if trace {
        obs::set_enabled(true);
    }
    let args = par::strip_thread_flags(&raw).unwrap_or_else(|e| {
        eprintln!("sweep: {e}");
        std::process::exit(2);
    });
    let args = ucfg_core::wordset::chunked::strip_chunk_flags(&args).unwrap_or_else(|e| {
        eprintln!("sweep: {e}");
        std::process::exit(2);
    });
    let mut max_n: Option<usize> = None;
    let mut kernels = false;
    for a in &args {
        match a.as_str() {
            "--kernels" => kernels = true,
            other => match other.parse() {
                Ok(v) => max_n = Some(v),
                Err(_) => {
                    eprintln!("sweep: unrecognised argument '{other}'");
                    std::process::exit(2);
                }
            },
        }
    }
    let threads = par::thread_count();
    let (csv, file) = if kernels {
        // The exhaustive columns cap themselves (NA above their
        // thresholds), so the default ceiling just bounds the cheap ones.
        (
            kernel_sweep_csv(max_n.unwrap_or(16), threads),
            "kernel_sweep.csv",
        )
    } else {
        (
            sweep_csv(max_n.unwrap_or(256), threads),
            "separation_sweep.csv",
        )
    };
    print!("{csv}");
    let dir = out_dir();
    let path = dir.join(file);
    if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &csv)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("sweep written to {}", path.display());
    }
    if obs::enabled() {
        match obs::write_metrics("sweep") {
            Ok(p) => eprintln!("metrics written to {}", p.display()),
            Err(e) => eprintln!("warning: could not write metrics: {e}"),
        }
        eprintln!("{}", obs::summary());
    }
}
