//! Prints the experiment report: all tables/figures, or selected ids.
//! A full report is also written to `out/report_output.txt` (override
//! the directory with `$UCFG_OUT_DIR`).
//!
//! Usage:
//!   report            # everything, to stdout + out/report_output.txt
//!   report T5 T8      # selected experiments, stdout only
//!   report --list     # available experiment ids
//!   report --threads 4  # worker threads (overrides $UCFG_THREADS)

use ucfg_bench::experiments;
use ucfg_support::bench::out_dir;

fn main() {
    // Strip a `--threads N` override (funnelled into UCFG_THREADS, so
    // every parallel kernel in the experiments honours it); the remaining
    // arguments are experiment ids.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut args: Vec<String> = Vec::with_capacity(raw.len());
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        if a == "--threads" || a == "-j" {
            if let Some(v) = it
                .next()
                .and_then(|v| v.parse::<usize>().ok().filter(|&t| t >= 1))
            {
                ucfg_support::par::set_thread_count(v);
            }
        } else {
            args.push(a);
        }
    }
    if args.iter().any(|a| a == "--list" || a == "-l") {
        println!("available experiments (see DESIGN.md §5):");
        for id in experiments::ALL_EXPERIMENTS {
            println!("  {id}");
        }
        return;
    }
    if args.is_empty() {
        let report = experiments::full_report();
        print!("{report}");
        let dir = out_dir();
        let path = dir.join("report_output.txt");
        if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &report))
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("report written to {}", path.display());
        }
    } else {
        for id in &args {
            print!("{}", experiments::run(id));
        }
    }
}
