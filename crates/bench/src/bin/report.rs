//! Prints the experiment report: all tables/figures, or selected ids.
//!
//! Usage:
//!   report            # everything
//!   report T5 T8      # selected experiments
//!   report --list     # available experiment ids

use ucfg_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list" || a == "-l") {
        println!("available experiments (see DESIGN.md §5):");
        for id in experiments::ALL_EXPERIMENTS {
            println!("  {id}");
        }
        return;
    }
    if args.is_empty() {
        print!("{}", experiments::full_report());
    } else {
        for id in &args {
            print!("{}", experiments::run(id));
        }
    }
}
