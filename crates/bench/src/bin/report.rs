//! Prints the experiment report: all tables/figures, or selected ids.
//! A full report is also written to `out/report_output.txt` (override
//! the directory with `$UCFG_OUT_DIR`).
//!
//! Usage:
//!   report            # everything, to stdout + out/report_output.txt
//!   report T5 T8      # selected experiments, stdout only
//!   report --list     # available experiment ids
//!   report --threads 4  # worker threads (overrides $UCFG_THREADS);
//!                       # also -j 4, --threads=4, -j4
//!   report --chunk-bits N  # stream wordset kernels in N-bit chunks
//!                          # (sets UCFG_WORDSET_CHUNK); also --chunk-bits=N
//!   report --trace    # per-experiment metrics (or UCFG_TRACE=1):
//!                     # summary to stderr + out/METRICS_report.json

use ucfg_bench::experiments;
use ucfg_support::bench::out_dir;
use ucfg_support::{obs, par};

fn main() {
    // Strip the `--trace` and thread-override flags (the latter funnels
    // into UCFG_THREADS, so every parallel kernel in the experiments
    // honours it); the remaining arguments are experiment ids.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (raw, trace) = obs::strip_trace_flag(&raw);
    if trace {
        obs::set_enabled(true);
    }
    let args = par::strip_thread_flags(&raw).unwrap_or_else(|e| {
        eprintln!("report: {e}");
        std::process::exit(2);
    });
    let args = ucfg_core::wordset::chunked::strip_chunk_flags(&args).unwrap_or_else(|e| {
        eprintln!("report: {e}");
        std::process::exit(2);
    });
    if args.iter().any(|a| a == "--list" || a == "-l") {
        println!("available experiments (see DESIGN.md §5):");
        for id in experiments::ALL_EXPERIMENTS {
            println!("  {id}");
        }
        return;
    }
    if args.is_empty() {
        let report = experiments::full_report();
        print!("{report}");
        let dir = out_dir();
        let path = dir.join("report_output.txt");
        if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &report))
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("report written to {}", path.display());
        }
    } else {
        for id in &args {
            print!("{}", experiments::run(id));
        }
    }
    if obs::enabled() {
        match obs::write_metrics("report") {
            Ok(p) => eprintln!("metrics written to {}", p.display()),
            Err(e) => eprintln!("warning: could not write metrics: {e}"),
        }
        eprintln!("{}", obs::summary());
    }
}
