//! Prints the experiment report: all tables/figures, or selected ids.
//! A full report is also written to `out/report_output.txt` (override
//! the directory with `$UCFG_OUT_DIR`).
//!
//! Usage:
//!   report            # everything, to stdout + out/report_output.txt
//!   report T5 T8      # selected experiments, stdout only
//!   report --list     # available experiment ids

use ucfg_bench::experiments;
use ucfg_support::bench::out_dir;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list" || a == "-l") {
        println!("available experiments (see DESIGN.md §5):");
        for id in experiments::ALL_EXPERIMENTS {
            println!("  {id}");
        }
        return;
    }
    if args.is_empty() {
        let report = experiments::full_report();
        print!("{report}");
        let dir = out_dir();
        let path = dir.join("report_output.txt");
        if let Err(e) = std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, &report))
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("report written to {}", path.display());
        }
    } else {
        for id in &args {
            print!("{}", experiments::run(id));
        }
    }
}
