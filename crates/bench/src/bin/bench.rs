//! The unified bench harness driver: runs any (or every) bench suite
//! in one process, and — crucially for CI — prints the authoritative
//! suite list so shell scripts never hardcode it again.
//!
//! Usage:
//! ```text
//! bench --list                 # suite names, one per line (nothing runs)
//! bench <suite> [...]          # run the named suites
//! bench --all [harness flags]  # run every suite
//! ```
//!
//! Any flag the driver doesn't recognise (`--smoke`, `--samples N`,
//! `--warmup-ms N`, `--out-dir P`, a substring filter, or the harness's
//! own `--list`) is passed through to `ucfg_support::bench::Options`, so
//! `bench --all --smoke` is the whole CI bench-smoke matrix in one
//! process and `bench parsing --list` enumerates one suite's benchmark
//! ids.

use ucfg_bench::suites;
use ucfg_support::bench::Options;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `--list` with no suite selection lists *suites*; with a selection
    // it falls through to the harness, which lists that suite's
    // benchmark ids.
    let selects_suites = args
        .iter()
        .any(|a| a == "--all" || suites::ALL_SUITES.contains(&a.as_str()));
    if args.iter().any(|a| a == "--list") && !selects_suites {
        for name in suites::ALL_SUITES {
            println!("{name}");
        }
        return;
    }
    let mut selected: Vec<&str> = Vec::new();
    let mut harness_args: Vec<String> = Vec::new();
    let mut all = false;
    for a in &args {
        if a == "--all" {
            all = true;
        } else if let Some(name) = suites::ALL_SUITES.iter().find(|s| *s == a) {
            selected.push(name);
        } else {
            harness_args.push(a.clone());
        }
    }
    if all {
        selected = suites::ALL_SUITES.to_vec();
    }
    if selected.is_empty() {
        eprintln!(
            "bench: no suite selected\n\
             usage: bench --list | bench --all [flags] | bench <suite>.. [flags]\n\
             suites: {}",
            suites::ALL_SUITES.join(" ")
        );
        std::process::exit(2);
    }
    let mut empty_suites: Vec<&str> = Vec::new();
    for name in selected {
        println!("=== suite {name} ===");
        let opts = Options::parse(harness_args.iter().cloned());
        let suite = suites::build(name, opts).expect("selected from ALL_SUITES");
        // A run (not a `--list`) that records nothing measured nothing —
        // typically a filter that matches no benchmark id. CI treats a
        // silently-empty suite as a failure, so flag it here.
        if !suite.is_list() && suite.is_empty() {
            empty_suites.push(name);
        }
        suite.finish();
    }
    if !empty_suites.is_empty() {
        eprintln!(
            "bench: no measurement rows from suite(s): {} (filter matched nothing?)",
            empty_suites.join(" ")
        );
        std::process::exit(1);
    }
}
