//! The job matrix and its executor.
//!
//! The matrix covers the whole reproduction: every experiment table
//! (`exp/<id>`), every bench suite from the shared registry
//! (`bench/<suite>`), the separation and kernel sweeps pinned at 1 and 4
//! worker threads (`sweep/<which>@t<N>`), and derived comparison jobs
//! (`check/<which>_threads`) that assert the thread-pinned sweeps are
//! byte-identical — the determinism contract, enforced inside one run.
//!
//! Jobs are executed serially in dependency (topological) order; a
//! comparison job names its dependencies by job id and is skipped when a
//! filter removed them. Deterministic jobs consult the
//! [`DiskCache`] before running and publish
//! their artifact digest into the run's deterministic stratum; bench
//! jobs are never cached and publish timed medians instead. A panicking
//! job is caught, reported as failed, and does not stop the graph.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use super::cache::{digest_of, grammar_fingerprint, CachedArtifact, DiskCache};
use crate::{experiments, suites, sweep};
use ucfg_support::bench::Options;
use ucfg_support::fnv::Fnv1a;

/// What a job runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobKind {
    /// One experiment table (`experiments::run(id)`); deterministic text.
    Experiment(&'static str),
    /// One bench suite from the shared registry; timed entries.
    BenchSuite(&'static str),
    /// A sweep CSV at a pinned worker-thread count; deterministic text.
    Sweep {
        /// Bitmap-kernel sweep (vs the Theorem 1 separation sweep).
        kernels: bool,
        /// Sweep ceiling.
        max_n: usize,
        /// Pinned worker threads for this job.
        threads: usize,
    },
    /// Byte-compare the digests of two sweep jobs (the thread-count
    /// determinism contract); deterministic verdict text.
    ThreadCompare {
        /// Which sweep pair to compare.
        kernels: bool,
    },
}

/// One node of the job graph.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Stable job id (`exp/T5`, `bench/parsing`, `sweep/kernels@t4`, …).
    pub id: String,
    /// What to run.
    pub kind: JobKind,
    /// Ids of jobs whose artifacts this job consumes.
    pub deps: Vec<String>,
}

/// How a job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Ran to completion.
    Ok,
    /// Artifact served from the disk cache.
    Cached,
    /// Panicked, or an invariant (thread-compare) failed.
    Failed(String),
    /// Not run: a dependency failed or was filtered out.
    Skipped(String),
}

impl JobStatus {
    /// Does this status fail the run?
    pub fn is_failure(&self) -> bool {
        matches!(self, JobStatus::Failed(_))
    }
}

/// One timed benchmark produced by a bench job.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEntry {
    /// Baseline entry name (`bench/<suite>/<group>/<id>`).
    pub name: String,
    /// Median per-iteration time.
    pub median_ns: f64,
    /// Single smoke iteration (vs a sampled median).
    pub smoke: bool,
}

/// One executed job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job id.
    pub id: String,
    /// Short kind label for the report (`experiment`, `bench`, …).
    pub kind: &'static str,
    /// How it ended.
    pub status: JobStatus,
    /// Wall time of this run (0 for cached/skipped jobs).
    pub duration_ns: f64,
    /// Exact artifact digest, for deterministic jobs.
    pub digest: Option<String>,
    /// The artifact text (experiment table, CSV, verdict, bench JSON
    /// lines), rendered into the HTML report.
    pub detail: Option<String>,
    /// Timed medians, for bench jobs.
    pub timed: Vec<TimedEntry>,
}

/// Build the full job matrix. `--smoke` shrinks the sweep ceilings and
/// runs each benchmark once; the job *set* is the same in both profiles.
pub fn matrix(smoke: bool) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for id in experiments::ALL_EXPERIMENTS {
        jobs.push(JobSpec {
            id: format!("exp/{id}"),
            kind: JobKind::Experiment(id),
            deps: Vec::new(),
        });
    }
    for suite in suites::ALL_SUITES {
        jobs.push(JobSpec {
            id: format!("bench/{suite}"),
            kind: JobKind::BenchSuite(suite),
            deps: Vec::new(),
        });
    }
    let (sep_n, ker_n) = if smoke { (64, 12) } else { (256, 16) };
    for (kernels, max_n) in [(false, sep_n), (true, ker_n)] {
        let which = if kernels { "kernels" } else { "separation" };
        for threads in [1usize, 4] {
            jobs.push(JobSpec {
                id: format!("sweep/{which}@t{threads}"),
                kind: JobKind::Sweep {
                    kernels,
                    max_n,
                    threads,
                },
                deps: Vec::new(),
            });
        }
        jobs.push(JobSpec {
            id: format!("check/{which}_threads"),
            kind: JobKind::ThreadCompare { kernels },
            deps: vec![format!("sweep/{which}@t1"), format!("sweep/{which}@t4")],
        });
    }
    jobs
}

/// The cache key of a deterministic job: job id + parameters + the
/// grammar fingerprint. Bench jobs return `None` (never cached).
pub fn cache_key(spec: &JobSpec, fingerprint: u64) -> Option<u64> {
    let mut h = Fnv1a::new();
    h.write(spec.id.as_bytes()).write_u64(fingerprint);
    match spec.kind {
        JobKind::Experiment(_) => {}
        JobKind::BenchSuite(_) => return None,
        JobKind::Sweep {
            kernels,
            max_n,
            threads,
        } => {
            h.write_u8(u8::from(kernels))
                .write_usize(max_n)
                .write_usize(threads);
        }
        // Derived from its deps in microseconds; caching buys nothing.
        JobKind::ThreadCompare { .. } => return None,
    }
    Some(h.finish())
}

/// Execution settings the job bodies need.
pub struct ExecOptions {
    /// Smoke mode: one iteration per benchmark.
    pub smoke: bool,
    /// Where bench suites write their `BENCH_<suite>.json`.
    pub bench_out_dir: std::path::PathBuf,
}

/// Execute the matrix in order, consulting `cache` for deterministic
/// jobs. `progress` is called after each job with (done, total, result).
pub fn execute(
    specs: &[JobSpec],
    cache: &mut DiskCache,
    opts: &ExecOptions,
    mut progress: impl FnMut(usize, usize, &JobResult),
) -> Vec<JobResult> {
    let fingerprint = grammar_fingerprint();
    let total = specs.len();
    let mut results: Vec<JobResult> = Vec::with_capacity(total);
    for (done, spec) in specs.iter().enumerate() {
        let result = run_one(spec, fingerprint, cache, opts, &results);
        progress(done + 1, total, &result);
        results.push(result);
    }
    results
}

fn run_one(
    spec: &JobSpec,
    fingerprint: u64,
    cache: &mut DiskCache,
    opts: &ExecOptions,
    prior: &[JobResult],
) -> JobResult {
    let kind_label = match spec.kind {
        JobKind::Experiment(_) => "experiment",
        JobKind::BenchSuite(_) => "bench",
        JobKind::Sweep { .. } => "sweep",
        JobKind::ThreadCompare { .. } => "compare",
    };
    let mut result = JobResult {
        id: spec.id.clone(),
        kind: kind_label,
        status: JobStatus::Ok,
        duration_ns: 0.0,
        digest: None,
        detail: None,
        timed: Vec::new(),
    };

    // Dependency check: every dep must exist among prior results and
    // have produced a digest.
    let mut dep_digests = Vec::with_capacity(spec.deps.len());
    for dep in &spec.deps {
        match prior.iter().find(|r| &r.id == dep) {
            Some(r) if !r.status.is_failure() => match &r.digest {
                Some(d) => dep_digests.push((dep.clone(), d.clone())),
                None => {
                    result.status = JobStatus::Skipped(format!("dependency {dep} has no artifact"));
                    return result;
                }
            },
            Some(_) => {
                result.status = JobStatus::Skipped(format!("dependency {dep} failed"));
                return result;
            }
            None => {
                result.status =
                    JobStatus::Skipped(format!("dependency {dep} not in this run (filtered?)"));
                return result;
            }
        }
    }

    // Cache lookup for deterministic jobs.
    let key = cache_key(spec, fingerprint);
    if let Some(key) = key {
        if let Some(hit) = cache.load(&spec.id, key) {
            result.status = JobStatus::Cached;
            result.digest = Some(hit.digest);
            result.detail = Some(hit.text);
            return result;
        }
    }

    let start = Instant::now();
    let body: Result<(Option<String>, Vec<TimedEntry>), String> = match &spec.kind {
        JobKind::Experiment(id) => catch_unwind(AssertUnwindSafe(|| experiments::run(id)))
            .map(|text| (Some(text), Vec::new()))
            .map_err(panic_message),
        JobKind::BenchSuite(name) => {
            let bench_opts = Options {
                smoke: opts.smoke,
                out_dir: opts.bench_out_dir.clone(),
                ..Options::default()
            };
            catch_unwind(AssertUnwindSafe(|| {
                let suite = suites::build(name, bench_opts).expect("registered suite");
                let timed = suite
                    .results()
                    .into_iter()
                    .map(|e| TimedEntry {
                        name: format!("bench/{name}/{}/{}", e.group, e.id),
                        median_ns: e.stats.median_ns,
                        smoke: e.smoke,
                    })
                    .collect();
                let lines = suite.json_lines();
                suite.finish(); // writes out/BENCH_<suite>.json
                (Some(lines), timed)
            }))
            .map_err(panic_message)
        }
        JobKind::Sweep {
            kernels,
            max_n,
            threads,
        } => {
            let (kernels, max_n, threads) = (*kernels, *max_n, *threads);
            catch_unwind(AssertUnwindSafe(|| {
                let csv = if kernels {
                    sweep::kernel_sweep_csv(max_n, threads)
                } else {
                    sweep::sweep_csv(max_n, threads)
                };
                (Some(csv), Vec::new())
            }))
            .map_err(panic_message)
        }
        JobKind::ThreadCompare { .. } => {
            let (a, b) = (&dep_digests[0], &dep_digests[1]);
            if a.1 == b.1 {
                Ok((Some("identical".to_string()), Vec::new()))
            } else {
                Err(format!(
                    "thread-count determinism violated: {} = {} but {} = {}",
                    a.0, a.1, b.0, b.1
                ))
            }
        }
    };
    result.duration_ns = start.elapsed().as_nanos() as f64;

    match body {
        Ok((text, timed)) => {
            result.timed = timed;
            if let Some(text) = text {
                // Bench JSON lines are volatile (timings); only
                // deterministic kinds publish a digest.
                if !matches!(spec.kind, JobKind::BenchSuite(_)) {
                    let digest = digest_of(&text);
                    if let Some(key) = key {
                        let artifact = CachedArtifact {
                            digest: digest.clone(),
                            text: text.clone(),
                        };
                        if let Err(e) = cache.store(&spec.id, key, &artifact) {
                            eprintln!("warning: could not cache {}: {e}", spec.id);
                        }
                    }
                    result.digest = Some(digest);
                }
                result.detail = Some(text);
            }
        }
        Err(msg) => result.status = JobStatus::Failed(msg),
    }
    result
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_everything_in_dependency_order() {
        let jobs = matrix(true);
        // Every experiment, every suite, 4 sweeps, 2 compares.
        assert_eq!(
            jobs.len(),
            experiments::ALL_EXPERIMENTS.len() + suites::ALL_SUITES.len() + 6
        );
        let ids: Vec<&str> = jobs.iter().map(|j| j.id.as_str()).collect();
        assert!(ids.contains(&"exp/T8"));
        assert!(ids.contains(&"bench/serve_bench"));
        assert!(ids.contains(&"sweep/kernels@t4"));
        // Topological: every dep appears before its dependent.
        for (i, j) in jobs.iter().enumerate() {
            for dep in &j.deps {
                let at = ids.iter().position(|id| id == dep);
                assert!(at.is_some_and(|d| d < i), "{} dep {dep} out of order", j.id);
            }
        }
        // Ids are unique.
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }

    #[test]
    fn cache_keys_separate_jobs_and_params() {
        let fp = grammar_fingerprint();
        let jobs = matrix(true);
        let keys: Vec<Option<u64>> = jobs.iter().map(|j| cache_key(j, fp)).collect();
        // Bench and compare jobs are never cached.
        for (j, k) in jobs.iter().zip(&keys) {
            let expect_none = matches!(
                j.kind,
                JobKind::BenchSuite(_) | JobKind::ThreadCompare { .. }
            );
            assert_eq!(k.is_none(), expect_none, "{}", j.id);
        }
        // All present keys are distinct.
        let mut present: Vec<u64> = keys.iter().flatten().copied().collect();
        let n = present.len();
        present.sort_unstable();
        present.dedup();
        assert_eq!(present.len(), n);
        // The smoke and full sweep jobs differ (different max_n).
        let full = matrix(false);
        let smoke_sweep = jobs
            .iter()
            .position(|j| j.id == "sweep/separation@t1")
            .unwrap();
        let full_sweep = full
            .iter()
            .position(|j| j.id == "sweep/separation@t1")
            .unwrap();
        assert_ne!(
            cache_key(&jobs[smoke_sweep], fp),
            cache_key(&full[full_sweep], fp)
        );
        // A different fingerprint shifts every key.
        assert_ne!(cache_key(&jobs[0], fp), cache_key(&jobs[0], fp ^ 1),);
    }

    fn tmp_cache(tag: &str) -> DiskCache {
        let dir = std::env::temp_dir().join(format!("ucfg_orc_jobs_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        DiskCache::open(dir, false).unwrap()
    }

    #[test]
    fn execute_runs_compare_after_sweeps_and_caches_experiments() {
        // A miniature graph: one experiment, two tiny sweeps, a compare.
        let specs = vec![
            JobSpec {
                id: "exp/F1".into(),
                kind: JobKind::Experiment("F1"),
                deps: vec![],
            },
            JobSpec {
                id: "sweep/separation@t1".into(),
                kind: JobKind::Sweep {
                    kernels: false,
                    max_n: 4,
                    threads: 1,
                },
                deps: vec![],
            },
            JobSpec {
                id: "sweep/separation@t4".into(),
                kind: JobKind::Sweep {
                    kernels: false,
                    max_n: 4,
                    threads: 4,
                },
                deps: vec![],
            },
            JobSpec {
                id: "check/separation_threads".into(),
                kind: JobKind::ThreadCompare { kernels: false },
                deps: vec!["sweep/separation@t1".into(), "sweep/separation@t4".into()],
            },
        ];
        let mut cache = tmp_cache("exec");
        let opts = ExecOptions {
            smoke: true,
            bench_out_dir: std::env::temp_dir(),
        };
        let mut seen = 0usize;
        let results = execute(&specs, &mut cache, &opts, |done, total, _| {
            assert_eq!(total, 4);
            seen = done;
        });
        assert_eq!(seen, 4);
        assert!(
            results.iter().all(|r| r.status == JobStatus::Ok),
            "{results:?}"
        );
        // The compare saw identical digests (deterministic across threads).
        assert_eq!(results[3].detail.as_deref(), Some("identical"));
        assert_eq!(results[1].digest, results[2].digest);
        // A second execution hits the cache for all deterministic jobs.
        let rerun = execute(&specs, &mut cache, &opts, |_, _, _| {});
        for r in &rerun[..3] {
            assert_eq!(r.status, JobStatus::Cached, "{}", r.id);
        }
        assert_eq!(rerun[3].status, JobStatus::Ok, "compares never cache");
        assert_eq!(rerun[0].digest, results[0].digest);
        assert_eq!(rerun[0].detail, results[0].detail);
    }

    #[test]
    fn missing_dependency_skips_the_job() {
        let specs = vec![JobSpec {
            id: "check/separation_threads".into(),
            kind: JobKind::ThreadCompare { kernels: false },
            deps: vec!["sweep/separation@t1".into(), "sweep/separation@t4".into()],
        }];
        let mut cache = tmp_cache("skip");
        let opts = ExecOptions {
            smoke: true,
            bench_out_dir: std::env::temp_dir(),
        };
        let results = execute(&specs, &mut cache, &opts, |_, _, _| {});
        assert!(
            matches!(&results[0].status, JobStatus::Skipped(m) if m.contains("not in this run")),
            "{:?}",
            results[0].status
        );
    }
}
