//! Rendering a finished run: the self-contained HTML report.
//!
//! Pure `&RunReport → String` on top of [`ucfg_support::html`], so the
//! whole report is golden-file-testable: no clocks, no environment reads
//! — everything shown comes from the report value.

use super::jobs::{JobResult, JobStatus};
use super::RunReport;
use ucfg_support::baseline::{format_ns, Verdict};
use ucfg_support::html::{badge, details, pre, Document, Table};

fn status_badge(status: &JobStatus) -> String {
    match status {
        JobStatus::Ok => badge("ok", "ok"),
        JobStatus::Cached => badge("ok", "cached"),
        JobStatus::Failed(_) => badge("fail", "failed"),
        JobStatus::Skipped(_) => badge("warn", "skipped"),
    }
}

fn verdict_badge(v: &Verdict) -> String {
    match v {
        Verdict::Ok => badge("ok", "ok"),
        Verdict::Improved => badge("ok", "improved"),
        Verdict::Regression => badge("fail", "regression"),
        Verdict::BelowFloor => badge("warn", "below floor"),
        Verdict::MissingBaseline => badge("warn", "no baseline"),
    }
}

fn artifact_cell(job: &JobResult) -> String {
    match (&job.digest, job.timed.len()) {
        (Some(d), _) => d.clone(),
        (None, 0) => match &job.status {
            JobStatus::Failed(msg) | JobStatus::Skipped(msg) => msg.clone(),
            _ => "—".to_string(),
        },
        (None, n) => format!("{n} timed entries"),
    }
}

/// Render the self-contained HTML report for a finished run.
pub fn render_report(run: &RunReport) -> String {
    let mut doc = Document::new(&format!("ucfg orchestrate — {} run", run.profile));

    // Setup.
    let mut setup = Table::new("setup", &["Key", "Value"]);
    let ran = run
        .jobs
        .iter()
        .filter(|j| j.status == JobStatus::Ok)
        .count();
    let cached = run
        .jobs
        .iter()
        .filter(|j| j.status == JobStatus::Cached)
        .count();
    let failed = run.jobs.iter().filter(|j| j.status.is_failure()).count();
    let skipped = run.jobs.len() - ran - cached - failed;
    setup.row(&["profile", &run.profile]);
    setup.row(&["worker threads", &run.threads.to_string()]);
    setup.row(&[
        "jobs",
        &format!(
            "{} total: {ran} ran, {cached} cached, {failed} failed, {skipped} skipped",
            run.jobs.len()
        ),
    ]);
    setup.row(&[
        "artifact cache",
        &format!("{} hits, {} misses", run.cache_hits, run.cache_misses),
    ]);
    setup.row(&["baseline", &run.baseline_label]);
    setup.row(&[
        "tolerance",
        &format!(
            "fail timed entries over {:.2}× baseline; floor {}",
            run.tolerance.max_ratio,
            format_ns(run.tolerance.floor_ns)
        ),
    ]);
    setup.row(&["total wall time", &format_ns(run.total_duration_ns)]);
    doc.section("Setup", &setup.render());

    // Job summary. The status column holds pre-rendered badge HTML, so
    // the table body is written directly (cells escaped individually).
    let mut body = String::from(
        "<table class=\"summary\">\n<thead><tr><th>Job</th><th>Kind</th>\
         <th>Status</th><th>Duration</th><th>Artifact</th></tr></thead>\n<tbody>\n",
    );
    for job in &run.jobs {
        let dur = if job.duration_ns > 0.0 {
            format_ns(job.duration_ns)
        } else {
            "—".to_string()
        };
        body.push_str(&format!(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
            ucfg_support::html::escape(&job.id),
            job.kind,
            status_badge(&job.status),
            ucfg_support::html::escape(&dur),
            ucfg_support::html::escape(&artifact_cell(job)),
        ));
    }
    body.push_str("</tbody></table>\n");
    doc.section("Jobs", &body);

    // Baseline check.
    if run.checked {
        let mut sec = pre(&run.diff_summary.render());
        let mut table = String::from(
            "<table class=\"data\">\n<thead><tr><th>Entry</th><th>Baseline</th>\
             <th>Measured</th><th>Ratio</th><th>Verdict</th></tr></thead>\n<tbody>\n",
        );
        for c in &run.comparisons {
            let ratio = c.ratio.map_or("—".to_string(), |r| format!("{r:.2}×"));
            table.push_str(&format!(
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                ucfg_support::html::escape(&c.name),
                ucfg_support::html::escape(&c.baseline),
                ucfg_support::html::escape(&c.measured),
                ucfg_support::html::escape(&ratio),
                verdict_badge(&c.verdict),
            ));
        }
        table.push_str("</tbody></table>\n");
        sec.push_str(&table);
        if !run.stale_baseline_entries.is_empty() {
            sec.push_str(&details(
                &format!(
                    "{} baseline entr{} not produced by this run",
                    run.stale_baseline_entries.len(),
                    if run.stale_baseline_entries.len() == 1 {
                        "y"
                    } else {
                        "ies"
                    }
                ),
                &pre(&run.stale_baseline_entries.join("\n")),
            ));
        }
        doc.section("Baseline check", &sec);
    }

    // Per-job artifacts, collapsible.
    let mut artifacts = String::new();
    for job in &run.jobs {
        if let Some(text) = &job.detail {
            artifacts.push_str(&details(&job.id, &pre(text)));
        } else if let JobStatus::Failed(msg) = &job.status {
            artifacts.push_str(&details(&format!("{} (failed)", job.id), &pre(msg)));
        }
    }
    doc.section("Artifacts", &artifacts);

    doc.render()
}
