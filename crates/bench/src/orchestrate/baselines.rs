//! Baseline files: loading, saving, and checking a run against one.
//!
//! A baseline is a committed JSON file under `baselines/` with two
//! strata, mirroring the run's artifacts:
//!
//! - `"exact"` — deterministic artifact digests (experiment tables,
//!   sweep CSVs, thread-compare verdicts), compared bit-for-bit;
//! - `"timed_ns"` — benchmark medians in nanoseconds, compared under
//!   the tolerance policy stored alongside them (overridable from the
//!   command line).
//!
//! The pure comparison semantics (ratios, noise floor, verdicts) live in
//! [`ucfg_support::baseline`]; this module is the file format plus the
//! entry-matching walk. Entries present in the run but absent from the
//! baseline warn (new jobs must not fail the gate before their baseline
//! is committed); entries present in the baseline but absent from the
//! run are reported as stale so a shrunk matrix is visible in review.

use std::collections::BTreeMap;
use std::path::Path;

use ucfg_serve::Json;
use ucfg_support::baseline::{compare_exact, compare_timed, Comparison, Tolerance};

/// A parsed baseline file.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// The profile this baseline was recorded under (`smoke` / `full`).
    pub profile: String,
    /// The tolerance policy recorded with the data.
    pub tolerance: Tolerance,
    /// Deterministic artifact digests by entry name.
    pub exact: BTreeMap<String, String>,
    /// Benchmark medians (ns) by entry name.
    pub timed_ns: BTreeMap<String, f64>,
}

impl Baseline {
    /// An empty baseline for the given profile, with that profile's
    /// default tolerance.
    pub fn new(profile: &str) -> Baseline {
        Baseline {
            profile: profile.to_string(),
            tolerance: default_tolerance(profile),
            exact: BTreeMap::new(),
            timed_ns: BTreeMap::new(),
        }
    }
}

/// The default tolerance policy per profile. Smoke timings are single
/// iterations on shared runners, so the band is wide and the floor high;
/// full-profile medians are sampled and gate much tighter.
pub fn default_tolerance(profile: &str) -> Tolerance {
    if profile == "smoke" {
        Tolerance {
            max_ratio: 5.0,
            floor_ns: 1_000_000.0,
        }
    } else {
        Tolerance {
            max_ratio: 2.0,
            floor_ns: 100_000.0,
        }
    }
}

/// Load a baseline file.
pub fn load(path: &Path) -> Result<Baseline, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
    let v = Json::parse(&src).map_err(|e| format!("baseline {}: {e}", path.display()))?;
    let profile = v
        .get("profile")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("baseline {}: missing \"profile\"", path.display()))?
        .to_string();
    let mut tolerance = default_tolerance(&profile);
    if let Some(t) = v.get("tolerance") {
        if let Some(r) = t.get("max_ratio").and_then(as_f64) {
            tolerance.max_ratio = r;
        }
        if let Some(f) = t.get("floor_ns").and_then(as_f64) {
            tolerance.floor_ns = f;
        }
    }
    let mut exact = BTreeMap::new();
    if let Some(Json::Obj(fields)) = v.get("exact") {
        for (k, val) in fields {
            let d = val
                .as_str()
                .ok_or_else(|| format!("baseline {}: exact.{k} is not a string", path.display()))?;
            exact.insert(k.clone(), d.to_string());
        }
    }
    let mut timed_ns = BTreeMap::new();
    if let Some(Json::Obj(fields)) = v.get("timed_ns") {
        for (k, val) in fields {
            let ns = as_f64(val).ok_or_else(|| {
                format!("baseline {}: timed_ns.{k} is not a number", path.display())
            })?;
            timed_ns.insert(k.clone(), ns);
        }
    }
    Ok(Baseline {
        profile,
        tolerance,
        exact,
        timed_ns,
    })
}

fn as_f64(v: &Json) -> Option<f64> {
    match v {
        Json::Int(i) => Some(*i as f64),
        Json::Float(f) => Some(*f),
        _ => None,
    }
}

/// Render a baseline as its on-disk JSON (sorted sections, one entry per
/// line — the format is diff-reviewable in the repository).
pub fn render(b: &Baseline) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"profile\": {},\n",
        Json::str(&b.profile).render()
    ));
    out.push_str(&format!(
        "  \"tolerance\": {{\"max_ratio\": {:?}, \"floor_ns\": {:?}}},\n",
        b.tolerance.max_ratio, b.tolerance.floor_ns
    ));
    out.push_str("  \"exact\": {");
    for (i, (k, v)) in b.exact.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {}: {}",
            Json::str(k).render(),
            Json::str(v).render()
        ));
    }
    out.push_str("\n  },\n  \"timed_ns\": {");
    for (i, (k, v)) in b.timed_ns.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!("    {}: {:.1}", Json::str(k).render(), v));
    }
    out.push_str("\n  }\n}\n");
    out
}

/// Write a baseline file (creating parent directories).
pub fn save(path: &Path, b: &Baseline) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, render(b))
}

/// The outcome of checking a run against a baseline.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// One comparison per run entry, exact first then timed, each
    /// stratum in name order.
    pub comparisons: Vec<Comparison>,
    /// Baseline entries the run did not produce (never gate).
    pub stale: Vec<String>,
}

/// Compare a run's entries against a baseline under a tolerance policy.
pub fn check(
    run_exact: &BTreeMap<String, String>,
    run_timed: &BTreeMap<String, f64>,
    baseline: &Baseline,
    tolerance: Tolerance,
) -> CheckOutcome {
    let mut comparisons = Vec::with_capacity(run_exact.len() + run_timed.len());
    for (name, digest) in run_exact {
        comparisons.push(compare_exact(
            name,
            baseline.exact.get(name).map(String::as_str),
            digest,
        ));
    }
    for (name, &median) in run_timed {
        comparisons.push(compare_timed(
            name,
            baseline.timed_ns.get(name).copied(),
            median,
            tolerance,
        ));
    }
    let stale = baseline
        .exact
        .keys()
        .filter(|k| !run_exact.contains_key(*k))
        .chain(
            baseline
                .timed_ns
                .keys()
                .filter(|k| !run_timed.contains_key(*k)),
        )
        .cloned()
        .collect();
    CheckOutcome { comparisons, stale }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucfg_support::baseline::Verdict;

    fn sample() -> Baseline {
        let mut b = Baseline::new("smoke");
        b.exact.insert("exp/T1".into(), "fnv:00aa".into());
        b.exact
            .insert("check/separation_threads".into(), "fnv:ffff".into());
        b.timed_ns.insert("bench/parsing/cyk/4".into(), 2_000_000.0);
        b.timed_ns.insert("bench/parsing/tiny".into(), 5_000.0);
        b
    }

    #[test]
    fn round_trips_through_the_file_format() {
        let b = sample();
        let dir = std::env::temp_dir().join(format!("ucfg_orc_base_{}", std::process::id()));
        let path = dir.join("smoke.json");
        save(&path, &b).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded, b);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn render_is_line_per_entry_and_parseable() {
        let text = render(&sample());
        assert!(Json::parse(&text).is_ok(), "{text}");
        assert!(text
            .lines()
            .any(|l| l.trim_start().starts_with("\"exp/T1\"")));
    }

    #[test]
    fn missing_file_is_an_error() {
        let err = load(Path::new("/nonexistent/baseline.json")).unwrap_err();
        assert!(err.contains("cannot read baseline"), "{err}");
    }

    #[test]
    fn check_classifies_regression_tolerance_and_missing() {
        let b = sample();
        let tol = b.tolerance;
        let mut exact = BTreeMap::new();
        exact.insert("exp/T1".to_string(), "fnv:00aa".to_string()); // identical
        exact.insert("exp/T2".to_string(), "fnv:1234".to_string()); // no baseline
        let mut timed = BTreeMap::new();
        timed.insert("bench/parsing/cyk/4".to_string(), 30_000_000.0); // 15× slower
        timed.insert("bench/parsing/tiny".to_string(), 50_000.0); // below floor
        let out = check(&exact, &timed, &b, tol);
        let verdict = |name: &str| {
            out.comparisons
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.verdict.clone())
                .unwrap()
        };
        assert_eq!(verdict("exp/T1"), Verdict::Ok);
        assert_eq!(verdict("exp/T2"), Verdict::MissingBaseline);
        assert_eq!(verdict("bench/parsing/cyk/4"), Verdict::Regression);
        assert_eq!(verdict("bench/parsing/tiny"), Verdict::BelowFloor);
        // The compare job's digest was in the baseline but not the run.
        assert_eq!(out.stale, vec!["check/separation_threads".to_string()]);
    }

    #[test]
    fn within_tolerance_passes() {
        let b = sample();
        let mut timed = BTreeMap::new();
        timed.insert("bench/parsing/cyk/4".to_string(), 3_000_000.0); // 1.5×
        let out = check(&BTreeMap::new(), &timed, &b, b.tolerance);
        assert!(
            out.comparisons.iter().all(|c| !c.verdict.is_regression()),
            "{:?}",
            out.comparisons
        );
    }

    #[test]
    fn exact_mismatch_gates() {
        let b = sample();
        let mut exact = BTreeMap::new();
        exact.insert("exp/T1".to_string(), "fnv:dead".to_string());
        let out = check(&exact, &BTreeMap::new(), &b, b.tolerance);
        assert!(out.comparisons[0].verdict.is_regression());
    }

    #[test]
    fn profile_defaults_differ() {
        assert!(default_tolerance("smoke").max_ratio > default_tolerance("full").max_ratio);
        assert!(default_tolerance("smoke").floor_ns > default_tolerance("full").floor_ns);
    }
}
