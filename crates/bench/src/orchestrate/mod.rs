//! # The experiment orchestrator behind `ucfg orchestrate`.
//!
//! Runs the full reproduction matrix — every experiment table, every
//! bench suite from the shared registry, and the separation/kernel
//! sweeps pinned at 1 and 4 worker threads — as a dependency-aware job
//! graph with per-job artifact caching, live progress, a self-contained
//! HTML report, and a baseline regression gate:
//!
//! - [`jobs`] — the matrix, the serial topological executor, and the
//!   in-run thread-determinism comparison jobs;
//! - [`cache`] — the on-disk FNV-keyed artifact cache (serve-layer
//!   shape: content-addressed, hit/miss counters, collisions are
//!   misses);
//! - [`baselines`] — the committed `baselines/<profile>.json` format
//!   and the run-vs-baseline walk (exact digests bit-for-bit, timed
//!   medians under a tolerance policy);
//! - [`render`] — the static HTML report (inline CSS, no scripts).
//!
//! Outputs land under `<out>/orchestrate/`: `report.html`, `run.json`
//! (everything, including timings — volatile), `deterministic.json`
//! (artifact digests only — byte-identical across `UCFG_THREADS`, the
//! file CI diffs), and one CSV per sweep job. Bench suites additionally
//! write their usual `BENCH_<suite>.json` into `<out>/`.

pub mod baselines;
pub mod cache;
pub mod jobs;
pub mod render;

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

use jobs::{JobResult, JobStatus};
use ucfg_serve::Json;
use ucfg_support::baseline::{Comparison, DiffSummary, Tolerance};

/// Orchestrator settings, as parsed by the CLI.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Smoke profile: one iteration per benchmark, smaller sweeps.
    pub smoke: bool,
    /// Compare against the baseline and fail on regressions.
    pub check: bool,
    /// Write the run out as the new baseline for this profile.
    pub write_baseline: bool,
    /// Baseline path override (default `baselines/<profile>.json`).
    pub baseline_path: Option<PathBuf>,
    /// Output root (default `$UCFG_OUT_DIR`, else `out/`).
    pub out_dir: Option<PathBuf>,
    /// Cache directory override (default `<out>/orchestrate/cache`).
    pub cache_dir: Option<PathBuf>,
    /// Ignore cached artifacts (still refreshes them).
    pub refresh: bool,
    /// Tolerance-ratio override for timed comparisons.
    pub max_ratio: Option<f64>,
    /// Noise-floor override (ns) for timed comparisons.
    pub floor_ns: Option<f64>,
    /// Substring filter on job ids.
    pub filter: Option<String>,
    /// List the job matrix without running anything.
    pub list: bool,
}

impl Config {
    /// The profile name (`smoke` / `full`) this configuration runs.
    pub fn profile(&self) -> &'static str {
        if self.smoke {
            "smoke"
        } else {
            "full"
        }
    }
}

/// Everything the report (HTML and JSON) shows about a finished run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Profile name.
    pub profile: String,
    /// Ambient worker-thread count (`UCFG_THREADS` / cores).
    pub threads: usize,
    /// Executed jobs, in graph order.
    pub jobs: Vec<JobResult>,
    /// Artifact-cache hits this run.
    pub cache_hits: u64,
    /// Artifact-cache misses this run.
    pub cache_misses: u64,
    /// Whether a baseline check ran.
    pub checked: bool,
    /// Baseline path (or why none was used), for display.
    pub baseline_label: String,
    /// The tolerance policy in force.
    pub tolerance: Tolerance,
    /// Run-vs-baseline comparisons (empty when unchecked).
    pub comparisons: Vec<Comparison>,
    /// Tally of the comparisons.
    pub diff_summary: DiffSummary,
    /// Baseline entries this run did not produce.
    pub stale_baseline_entries: Vec<String>,
    /// Total wall time of the run.
    pub total_duration_ns: f64,
}

/// The orchestrator's result, as the CLI consumes it.
#[derive(Debug)]
pub struct Outcome {
    /// Human summary for stdout.
    pub summary: String,
    /// Baseline regressions (timed past tolerance, or exact mismatch).
    pub regressions: usize,
    /// Jobs that failed (panic or determinism violation).
    pub failed_jobs: usize,
}

impl Outcome {
    /// Should the process exit nonzero?
    pub fn is_failure(&self) -> bool {
        self.regressions > 0 || self.failed_jobs > 0
    }
}

/// Run the orchestrator.
pub fn run(cfg: &Config) -> Result<Outcome, String> {
    let start = Instant::now();
    let out_root = cfg
        .out_dir
        .clone()
        .unwrap_or_else(ucfg_support::bench::out_dir);
    let orc_dir = out_root.join("orchestrate");
    let cache_dir = cfg
        .cache_dir
        .clone()
        .unwrap_or_else(|| orc_dir.join("cache"));

    // The matrix, optionally filtered.
    let mut specs = jobs::matrix(cfg.smoke);
    if let Some(filter) = &cfg.filter {
        specs.retain(|s| s.id.contains(filter.as_str()));
    }
    if cfg.list {
        let mut out = String::new();
        for s in &specs {
            out.push_str(&s.id);
            out.push('\n');
        }
        return Ok(Outcome {
            summary: out,
            regressions: 0,
            failed_jobs: 0,
        });
    }
    if specs.is_empty() {
        return Err(format!(
            "no jobs match filter {:?}",
            cfg.filter.as_deref().unwrap_or("")
        ));
    }

    std::fs::create_dir_all(&orc_dir)
        .map_err(|e| format!("cannot create {}: {e}", orc_dir.display()))?;
    let mut cache = cache::DiskCache::open(cache_dir, cfg.refresh)
        .map_err(|e| format!("cannot open artifact cache: {e}"))?;

    // Execute, with live progress on stderr.
    let exec_opts = jobs::ExecOptions {
        smoke: cfg.smoke,
        bench_out_dir: out_root.clone(),
    };
    let results = jobs::execute(&specs, &mut cache, &exec_opts, |done, total, r| {
        let status = match &r.status {
            JobStatus::Ok => format!("ok in {}", ucfg_support::baseline::format_ns(r.duration_ns)),
            JobStatus::Cached => "cached".to_string(),
            JobStatus::Failed(m) => format!("FAILED: {m}"),
            JobStatus::Skipped(m) => format!("skipped: {m}"),
        };
        eprintln!("[{done}/{total}] {} … {status}", r.id);
    });

    // Collect the two strata.
    let mut exact: BTreeMap<String, String> = BTreeMap::new();
    let mut timed: BTreeMap<String, f64> = BTreeMap::new();
    for r in &results {
        if let Some(d) = &r.digest {
            exact.insert(r.id.clone(), d.clone());
        }
        for t in &r.timed {
            timed.insert(t.name.clone(), t.median_ns);
        }
    }

    // Write sweep CSVs (informational copies of the deterministic
    // artifacts; the digests in deterministic.json are authoritative).
    for r in &results {
        if r.kind == "sweep" {
            if let Some(text) = &r.detail {
                let name = format!("{}.csv", r.id.replace(['/', '@'], "_"));
                let _ = std::fs::write(orc_dir.join(name), text);
            }
        }
    }

    // Baseline handling.
    let profile = cfg.profile();
    let baseline_path = cfg
        .baseline_path
        .clone()
        .unwrap_or_else(|| PathBuf::from("baselines").join(format!("{profile}.json")));
    let mut tolerance = baselines::default_tolerance(profile);
    let mut checked = false;
    let mut comparisons = Vec::new();
    let mut stale = Vec::new();
    let mut baseline_label = "not checked".to_string();
    if cfg.check {
        let baseline = baselines::load(&baseline_path)?;
        tolerance = baseline.tolerance;
        if let Some(r) = cfg.max_ratio {
            tolerance.max_ratio = r;
        }
        if let Some(f) = cfg.floor_ns {
            tolerance.floor_ns = f;
        }
        let outcome = baselines::check(&exact, &timed, &baseline, tolerance);
        comparisons = outcome.comparisons;
        stale = outcome.stale;
        checked = true;
        baseline_label = baseline_path.display().to_string();
    }
    if cfg.write_baseline {
        let mut b = baselines::Baseline::new(profile);
        if let Some(r) = cfg.max_ratio {
            b.tolerance.max_ratio = r;
        }
        if let Some(f) = cfg.floor_ns {
            b.tolerance.floor_ns = f;
        }
        b.exact = exact.clone();
        b.timed_ns = timed.clone();
        baselines::save(&baseline_path, &b)
            .map_err(|e| format!("cannot write baseline {}: {e}", baseline_path.display()))?;
        eprintln!("baseline written to {}", baseline_path.display());
    }

    let diff_summary = DiffSummary::of(&comparisons);
    let failed_jobs = results.iter().filter(|r| r.status.is_failure()).count();
    let report = RunReport {
        profile: profile.to_string(),
        threads: ucfg_support::par::thread_count(),
        jobs: results,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        checked,
        baseline_label,
        tolerance,
        comparisons,
        diff_summary,
        stale_baseline_entries: stale,
        total_duration_ns: start.elapsed().as_nanos() as f64,
    };

    // deterministic.json: the byte-comparable stratum — digests only,
    // sorted, no timings, no cache state.
    let det = Json::Obj(
        exact
            .iter()
            .map(|(k, v)| (k.clone(), Json::str(v.clone())))
            .collect(),
    );
    let det_path = orc_dir.join("deterministic.json");
    std::fs::write(&det_path, det.render() + "\n")
        .map_err(|e| format!("cannot write {}: {e}", det_path.display()))?;

    // run.json: the full volatile record.
    let run_path = orc_dir.join("run.json");
    std::fs::write(&run_path, run_json(&report).render() + "\n")
        .map_err(|e| format!("cannot write {}: {e}", run_path.display()))?;

    // report.html.
    let html_path = orc_dir.join("report.html");
    std::fs::write(&html_path, render::render_report(&report))
        .map_err(|e| format!("cannot write {}: {e}", html_path.display()))?;

    Ok(Outcome {
        summary: summary_text(&report, &det_path, &html_path),
        regressions: report.diff_summary.regressions,
        failed_jobs,
    })
}

fn summary_text(
    report: &RunReport,
    det_path: &std::path::Path,
    html_path: &std::path::Path,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let ran = report
        .jobs
        .iter()
        .filter(|j| j.status == JobStatus::Ok)
        .count();
    let cached = report
        .jobs
        .iter()
        .filter(|j| j.status == JobStatus::Cached)
        .count();
    let failed = report.jobs.iter().filter(|j| j.status.is_failure()).count();
    let _ = writeln!(
        out,
        "orchestrate [{}]: {} jobs ({ran} ran, {cached} cached, {failed} failed) in {}",
        report.profile,
        report.jobs.len(),
        ucfg_support::baseline::format_ns(report.total_duration_ns)
    );
    for j in &report.jobs {
        if let JobStatus::Failed(m) = &j.status {
            let _ = writeln!(out, "  FAILED {}: {m}", j.id);
        }
    }
    if report.checked {
        let _ = writeln!(
            out,
            "baseline {}: {}",
            report.baseline_label,
            report.diff_summary.render()
        );
        for c in &report.comparisons {
            if c.verdict.is_regression() {
                let _ = writeln!(
                    out,
                    "  REGRESSION {}: baseline {} vs measured {}{}",
                    c.name,
                    c.baseline,
                    c.measured,
                    c.ratio.map_or(String::new(), |r| format!(" ({r:.2}×)"))
                );
            }
        }
    }
    let _ = writeln!(out, "deterministic stratum → {}", det_path.display());
    let _ = writeln!(out, "report → {}", html_path.display());
    out
}

fn run_json(report: &RunReport) -> Json {
    let jobs = report
        .jobs
        .iter()
        .map(|j| {
            let (status, note) = match &j.status {
                JobStatus::Ok => ("ok", String::new()),
                JobStatus::Cached => ("cached", String::new()),
                JobStatus::Failed(m) => ("failed", m.clone()),
                JobStatus::Skipped(m) => ("skipped", m.clone()),
            };
            let mut fields = vec![
                ("id", Json::str(j.id.clone())),
                ("kind", Json::str(j.kind)),
                ("status", Json::str(status)),
                ("duration_ns", Json::Float(j.duration_ns)),
            ];
            if !note.is_empty() {
                fields.push(("note", Json::str(note)));
            }
            if let Some(d) = &j.digest {
                fields.push(("digest", Json::str(d.clone())));
            }
            if !j.timed.is_empty() {
                fields.push((
                    "timed",
                    Json::Arr(
                        j.timed
                            .iter()
                            .map(|t| {
                                Json::obj(vec![
                                    ("name", Json::str(t.name.clone())),
                                    ("median_ns", Json::Float(t.median_ns)),
                                    ("smoke", Json::Bool(t.smoke)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            Json::obj(fields)
        })
        .collect();
    let comparisons = report
        .comparisons
        .iter()
        .map(|c| {
            let mut fields = vec![
                ("name", Json::str(c.name.clone())),
                ("baseline", Json::str(c.baseline.clone())),
                ("measured", Json::str(c.measured.clone())),
                ("verdict", Json::str(format!("{:?}", c.verdict))),
            ];
            if let Some(r) = c.ratio {
                fields.push(("ratio", Json::Float(r)));
            }
            Json::obj(fields)
        })
        .collect();
    Json::obj(vec![
        ("profile", Json::str(report.profile.clone())),
        ("threads", Json::Int(report.threads as i64)),
        ("cache_hits", Json::Int(report.cache_hits as i64)),
        ("cache_misses", Json::Int(report.cache_misses as i64)),
        ("total_duration_ns", Json::Float(report.total_duration_ns)),
        ("jobs", Json::Arr(jobs)),
        ("checked", Json::Bool(report.checked)),
        ("baseline", Json::str(report.baseline_label.clone())),
        (
            "regressions",
            Json::Int(report.diff_summary.regressions as i64),
        ),
        ("comparisons", Json::Arr(comparisons)),
        (
            "stale_baseline_entries",
            Json::Arr(
                report
                    .stale_baseline_entries
                    .iter()
                    .map(|s| Json::str(s.clone()))
                    .collect(),
            ),
        ),
    ])
}
