//! The on-disk artifact cache behind the job graph.
//!
//! Deterministic jobs (experiment tables, sweep CSVs) are cached across
//! orchestrator runs in the same shape as the serve layer's
//! content-addressed artifact cache: an FNV-1a key addresses the
//! artifact, hit/miss counters feed the observability layer, and a
//! looked-up entry is trusted only if its stored job id matches (a key
//! collision or a truncated file is a miss, never a wrong answer).
//!
//! Cache keys fold the job id, the job's parameters, and the
//! [`grammar_fingerprint`] — the `Grammar::content_hash()` of the
//! canonical grammars the matrix exercises plus the crate version — so
//! changing a grammar construction (or bumping the crate) invalidates
//! every dependent artifact. Timed bench jobs are never cached: a timing
//! read from disk is not a measurement.

use std::path::PathBuf;
use ucfg_core::ln_grammars::{appendix_a_grammar, example3_grammar, example4_ucfg, naive_grammar};
use ucfg_serve::Json;
use ucfg_support::fnv::Fnv1a;
use ucfg_support::obs;

/// The workspace-content fingerprint folded into every cache key:
/// content hashes of the canonical grammar constructions (renaming- and
/// rule-order-insensitive) plus the crate version.
pub fn grammar_fingerprint() -> u64 {
    let mut h = Fnv1a::new();
    h.write(env!("CARGO_PKG_VERSION").as_bytes());
    for g in [
        appendix_a_grammar(4),
        example3_grammar(2),
        example4_ucfg(4),
        naive_grammar(3),
    ] {
        h.write_u64(g.content_hash());
    }
    h.finish()
}

/// A cached deterministic artifact: its exact digest and full text.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedArtifact {
    /// The exact digest (`fnv:<16 hex>`) of the artifact text.
    pub digest: String,
    /// The artifact text itself (experiment table, sweep CSV), kept so a
    /// cache hit can still render the full HTML report.
    pub text: String,
}

/// The per-run cache handle: a directory of `<key>.json` files plus
/// hit/miss accounting.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    /// When `--refresh` is given, lookups always miss (stores still
    /// happen, so a refresh run rebuilds the cache).
    refresh: bool,
    /// Lookups served from disk this run.
    pub hits: u64,
    /// Lookups that ran the job this run.
    pub misses: u64,
}

impl DiskCache {
    /// Open (creating if needed) the cache directory.
    pub fn open(dir: PathBuf, refresh: bool) -> std::io::Result<DiskCache> {
        std::fs::create_dir_all(&dir)?;
        Ok(DiskCache {
            dir,
            refresh,
            hits: 0,
            misses: 0,
        })
    }

    fn path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.json"))
    }

    /// Look up a job's artifact. A hit requires the file to parse and its
    /// stored job id to match `job_id`.
    pub fn load(&mut self, job_id: &str, key: u64) -> Option<CachedArtifact> {
        let found = if self.refresh {
            None
        } else {
            Self::read(&self.path(key), job_id)
        };
        match found {
            Some(artifact) => {
                self.hits += 1;
                obs::counter("orchestrate.cache.hits").add(1);
                Some(artifact)
            }
            None => {
                self.misses += 1;
                obs::counter("orchestrate.cache.misses").add(1);
                None
            }
        }
    }

    fn read(path: &PathBuf, job_id: &str) -> Option<CachedArtifact> {
        let src = std::fs::read_to_string(path).ok()?;
        let v = Json::parse(&src).ok()?;
        if v.get("job")?.as_str()? != job_id {
            return None;
        }
        Some(CachedArtifact {
            digest: v.get("digest")?.as_str()?.to_string(),
            text: v.get("text")?.as_str()?.to_string(),
        })
    }

    /// Store a job's artifact under its key.
    pub fn store(&self, job_id: &str, key: u64, artifact: &CachedArtifact) -> std::io::Result<()> {
        let v = Json::obj(vec![
            ("job", Json::str(job_id)),
            ("key", Json::str(format!("{key:016x}"))),
            ("digest", Json::str(artifact.digest.clone())),
            ("text", Json::str(artifact.text.clone())),
        ]);
        std::fs::write(self.path(key), v.render())
    }
}

/// The exact digest of a deterministic artifact text.
pub fn digest_of(text: &str) -> String {
    format!(
        "fnv:{:016x}",
        ucfg_support::fnv::hash_bytes(text.as_bytes())
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ucfg_orc_cache_{tag}_{}", std::process::id()))
    }

    #[test]
    fn round_trip_hit_and_collision_guard() {
        let dir = tmp_dir("rt");
        let _ = std::fs::remove_dir_all(&dir);
        let mut cache = DiskCache::open(dir.clone(), false).unwrap();
        let art = CachedArtifact {
            digest: digest_of("hello"),
            text: "hello".to_string(),
        };
        assert!(cache.load("exp/T1", 42).is_none(), "cold cache misses");
        cache.store("exp/T1", 42, &art).unwrap();
        assert_eq!(cache.load("exp/T1", 42), Some(art));
        // Same key, different job id: a collision is a miss, not a wrong
        // answer.
        assert!(cache.load("exp/T2", 42).is_none());
        assert_eq!((cache.hits, cache.misses), (1, 2));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refresh_forces_misses_but_still_stores() {
        let dir = tmp_dir("refresh");
        let _ = std::fs::remove_dir_all(&dir);
        let art = CachedArtifact {
            digest: digest_of("x"),
            text: "x".to_string(),
        };
        {
            let cache = DiskCache::open(dir.clone(), true).unwrap();
            cache.store("j", 7, &art).unwrap();
        }
        let mut fresh = DiskCache::open(dir.clone(), true).unwrap();
        assert!(fresh.load("j", 7).is_none(), "--refresh ignores the disk");
        let mut warm = DiskCache::open(dir.clone(), false).unwrap();
        assert_eq!(warm.load("j", 7), Some(art));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_is_stable_within_a_build() {
        assert_eq!(grammar_fingerprint(), grammar_fingerprint());
        assert_ne!(grammar_fingerprint(), 0);
    }

    #[test]
    fn digest_format() {
        let d = digest_of("abc");
        assert!(d.starts_with("fnv:") && d.len() == 4 + 16, "{d}");
        assert_ne!(digest_of("abc"), digest_of("abd"));
    }
}
