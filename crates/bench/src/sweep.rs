//! The Theorem 1 separation sweep as a library: a deterministic,
//! thread-parallel `n`-sweep rendered to the CSV consumed by the plotting
//! scripts. The `sweep` binary is a thin wrapper around [`sweep_csv`].
//!
//! Rows are computed on the [`ucfg_support::par`] layer, so worker counts
//! (including the `UCFG_THREADS` override) never change the bytes of the
//! output.

use ucfg_core::separation::{separation_row, SeparationRow};
use ucfg_support::{obs, par};

/// The CSV header line (without trailing newline).
///
/// Fields that are only computed below a size threshold (`nfa_exact`,
/// `ucfg_dawg`, `ucfg_lower_bound_log2`) render as the explicit sentinel
/// [`CSV_NA`] when absent, so every row always has the full column count
/// and naive CSV consumers never see trailing/empty cells.
pub const CSV_HEADER: &str =
    "n,ln_size_log2,cfg_size,nfa_pattern,nfa_exact,ucfg_dawg,ucfg_example4_log2,ucfg_lower_bound_log2";

/// The sentinel emitted for fields that were not computed at this `n`.
pub const CSV_NA: &str = "NA";

/// The `n` values visited by a sweep up to `max_n`: dense for small `n`,
/// then strides, then powers of two — and always ending **exactly at**
/// `max_n` (deduplicated when `max_n` already lands on a stride), so the
/// requested endpoint is never silently skipped.
pub fn sweep_schedule(max_n: usize) -> Vec<usize> {
    let mut ns = Vec::new();
    let mut n = 2usize;
    while n <= max_n {
        ns.push(n);
        n = if n < 16 {
            n + 2
        } else if n < 64 {
            n + 8
        } else {
            n * 2
        };
    }
    if max_n >= 2 && ns.last() != Some(&max_n) {
        ns.push(max_n);
    }
    ns
}

/// Cheap end-to-end cross-check attached to every small-`n` sweep row
/// (`n ≤ SELF_CHECK_MAX_N`): CYK-parse the full length-`2n` word domain
/// against the CNF of the Appendix A grammar (one reused rule index) and
/// compare the accept count with the cached `L_n` bitmap and the
/// closed-form `|L_n|`. The closed-form sweep columns never touch the
/// parsing or word-set kernels, so this keeps the sweep an end-to-end
/// witness for them too — and, under `UCFG_TRACE=1`, feeds the metrics
/// export nonzero `cyk.*` and `wordset.cache.*` counters. It asserts and
/// returns nothing, so the CSV bytes are untouched.
fn self_check_row(n: usize) {
    const SELF_CHECK_MAX_N: usize = 5;
    if n > SELF_CHECK_MAX_N {
        return;
    }
    use ucfg_core::{ln_grammars::appendix_a_grammar, words, wordset};
    use ucfg_grammar::cyk::{CykChart, CykRuleIndex};
    use ucfg_grammar::normal_form::CnfGrammar;

    let cnf = CnfGrammar::from_grammar(&appendix_a_grammar(n));
    let index = CykRuleIndex::new(&cnf);
    let accepted = (0..1u64 << (2 * n))
        .filter(|&w| {
            let word = cnf
                .encode(&words::to_string(n, w))
                .expect("appendix A grammar covers {a, b}");
            CykChart::build_with_index(&cnf, &index, &word).accepted()
        })
        .count() as u64;
    let ln = wordset::ln_bitmap(n);
    assert_eq!(accepted, ln.count(), "CYK vs L_n bitmap at n = {n}");
    assert_eq!(
        Some(accepted),
        words::ln_size(n).to_u64(),
        "CYK vs closed-form |L_n| at n = {n}"
    );
    // A second bitmap request must come from the process-wide cache.
    assert!(std::sync::Arc::ptr_eq(&ln, &wordset::ln_bitmap(n)));
}

fn csv_row(n: usize, row: &SeparationRow) -> String {
    format!(
        "{},{:.3},{},{},{},{},{:.3},{}",
        n,
        row.language_size.log2_approx(),
        row.cfg_size,
        row.nfa_pattern_transitions,
        row.nfa_exact_transitions
            .map_or(CSV_NA.to_string(), |v| v.to_string()),
        row.ucfg_dawg_size
            .map_or(CSV_NA.to_string(), |v| v.to_string()),
        row.ucfg_example4_size.log2_approx(),
        row.ucfg_lower_bound_log2
            .map_or(CSV_NA.to_string(), |v| format!("{v:.3}")),
    )
}

/// Render the full sweep CSV (header + one row per scheduled `n`).
///
/// Rows are computed on up to `threads` workers of the deterministic
/// parallel map but always emitted in schedule order, and
/// `separation_row` itself is deterministic, so the output is
/// byte-identical for every `threads >= 1`.
pub fn sweep_csv(max_n: usize, threads: usize) -> String {
    let schedule = sweep_schedule(max_n);
    let rows = par::par_map_threads(&schedule, threads.max(1), |&n| {
        obs::count!("sweep.rows");
        let _t = obs::span!("sweep.row");
        self_check_row(n);
        csv_row(n, &separation_row(n, 24, 9))
    });
    let mut csv = String::with_capacity(64 * (rows.len() + 1));
    csv.push_str(CSV_HEADER);
    csv.push('\n');
    for row in rows {
        csv.push_str(&row);
        csv.push('\n');
    }
    csv
}

/// Header of the bitmap-kernel sweep CSV (without trailing newline).
///
/// Unlike [`CSV_HEADER`]'s closed-form columns, every cell here is the
/// output of an exhaustive popcount kernel on [`ucfg_core::wordset`]
/// bitmaps, so the CSV doubles as an end-to-end determinism witness: the
/// CI job byte-compares it across `UCFG_THREADS` settings. Fields above a
/// kernel's size threshold render as [`CSV_NA`].
pub const KERNEL_CSV_HEADER: &str =
    "n,cover_rects,covers_exactly,max_overlap,histogram_buckets,full_family_discrepancy,exact_max_discrepancy,rank_gf2";

/// The `n` values visited by a kernel sweep up to `max_n`: the family `𝓛`
/// needs `n ≡ 0 (mod 4)`, so the schedule is exactly the multiples of 4.
pub fn kernel_sweep_schedule(max_n: usize) -> Vec<usize> {
    (1..).map(|k| 4 * k).take_while(|&n| n <= max_n).collect()
}

fn kernel_csv_row(n: usize) -> String {
    use ucfg_core::cover::{overlap_histogram_threads, verify_cover_threads};
    use ucfg_core::discrepancy::{
        discrepancy_threads, exact_max_discrepancy_threads, family_side_patterns,
    };
    use ucfg_core::partition::OrderedPartition;
    use ucfg_core::rank::rank_gf2_threads;
    use ucfg_core::rectangle::SetRectangle;

    let na = || CSV_NA.to_string();
    // The 2^{2n}-domain kernels (cover verification, histogram) and the
    // 2^n × 2^n rank matrix are exhaustive: keep them to n ≤ 10. The
    // discrepancy kernels live in the 2^n family-rank domain and scale to
    // every scheduled n. Inner kernels run serially — the rows themselves
    // are the parallel unit ([`kernel_sweep_csv`]).
    let (cover_rects, covers_exactly, max_overlap, histogram_buckets) = if n <= 10 {
        let rects = ucfg_core::cover::example8_cover(n);
        let report = verify_cover_threads(n, &rects, 1);
        let hist = overlap_histogram_threads(n, &rects, 1);
        (
            report.size.to_string(),
            report.covers_exactly.to_string(),
            report.max_overlap.to_string(),
            hist.len().to_string(),
        )
    } else {
        (na(), na(), na(), na())
    };
    let part = OrderedPartition::new(n, 1, n);
    let full_family_discrepancy = if n <= 20 {
        let (s_all, t_all) = family_side_patterns(n, part);
        let full = SetRectangle::new(
            part,
            s_all.into_iter().collect(),
            t_all.into_iter().collect(),
        );
        discrepancy_threads(n, &full, 1).to_string()
    } else {
        na()
    };
    // Above n = 8 the [1, n] cut has 2^{n/2} > 26 T-patterns, so the exact
    // scan is infeasible (`None`); don't even enumerate the side patterns.
    let exact_max = if n <= 12 {
        exact_max_discrepancy_threads(n, part, 1).map_or_else(na, |v| v.to_string())
    } else {
        na()
    };
    let rank = if n <= 10 {
        rank_gf2_threads(n, 1).to_string()
    } else {
        na()
    };
    format!(
        "{n},{cover_rects},{covers_exactly},{max_overlap},{histogram_buckets},{full_family_discrepancy},{exact_max},{rank}"
    )
}

/// Render the bitmap-kernel sweep CSV (header + one row per scheduled
/// `n`). Rows are computed on up to `threads` workers but emitted in
/// schedule order, and every kernel is bit-identical across worker
/// counts, so the output is byte-identical for every `threads >= 1` —
/// the property the CI determinism job asserts.
pub fn kernel_sweep_csv(max_n: usize, threads: usize) -> String {
    let schedule = kernel_sweep_schedule(max_n);
    let rows = par::par_map_threads(&schedule, threads.max(1), |&n| {
        obs::count!("sweep.kernel_rows");
        let _t = obs::span!("sweep.kernel_row");
        kernel_csv_row(n)
    });
    let mut csv = String::with_capacity(64 * (rows.len() + 1));
    csv.push_str(KERNEL_CSV_HEADER);
    csv.push('\n');
    for row in rows {
        csv.push_str(&row);
        csv.push('\n');
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_dense_then_strided() {
        assert_eq!(sweep_schedule(16), vec![2, 4, 6, 8, 10, 12, 14, 16]);
        assert_eq!(sweep_schedule(1), Vec::<usize>::new());
        let s = sweep_schedule(256);
        assert_eq!(s.last(), Some(&256));
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn schedule_always_ends_at_the_requested_endpoint() {
        // The regression: strides used to skip the endpoint entirely
        // (sweep_schedule(100) ended at 64, sweep_schedule(20) at 16).
        assert_eq!(
            sweep_schedule(100),
            vec![2, 4, 6, 8, 10, 12, 14, 16, 24, 32, 40, 48, 56, 64, 100]
        );
        assert_eq!(sweep_schedule(20), vec![2, 4, 6, 8, 10, 12, 14, 16, 20]);
        assert_eq!(sweep_schedule(2), vec![2]);
        assert_eq!(sweep_schedule(3), vec![2, 3]);
        for max_n in 2..=300usize {
            let s = sweep_schedule(max_n);
            assert_eq!(s.last(), Some(&max_n), "endpoint for max_n={max_n}");
            assert!(
                s.windows(2).all(|w| w[0] < w[1]),
                "strictly increasing, no duplicate endpoint (max_n={max_n})"
            );
        }
    }

    #[test]
    fn csv_is_byte_identical_across_thread_counts() {
        // max_n = 13 is off-stride, so this schedule exercises the
        // appended endpoint: 2, 4, 6, 8, 10, 12, 13.
        let single = sweep_csv(13, 1);
        for threads in [2, 3, 8] {
            assert_eq!(single, sweep_csv(13, threads), "threads = {threads}");
        }
        assert_eq!(single.lines().next(), Some(CSV_HEADER));
        assert_eq!(single.lines().count(), 1 + sweep_schedule(13).len());
        let last = single.lines().last().unwrap();
        assert!(last.starts_with("13,"), "endpoint row present: {last}");
    }

    #[test]
    fn kernel_schedule_is_the_multiples_of_four() {
        assert_eq!(kernel_sweep_schedule(3), Vec::<usize>::new());
        assert_eq!(kernel_sweep_schedule(4), vec![4]);
        assert_eq!(kernel_sweep_schedule(17), vec![4, 8, 12, 16]);
    }

    #[test]
    fn kernel_csv_is_byte_identical_across_thread_counts() {
        let single = kernel_sweep_csv(12, 1);
        for threads in [2, 3, 8] {
            assert_eq!(single, kernel_sweep_csv(12, threads), "threads = {threads}");
        }
        assert_eq!(single.lines().next(), Some(KERNEL_CSV_HEADER));
        assert_eq!(single.lines().count(), 1 + kernel_sweep_schedule(12).len());
    }

    #[test]
    fn kernel_csv_rows_match_the_kernels() {
        let csv = kernel_sweep_csv(8, 2);
        let columns = KERNEL_CSV_HEADER.split(',').count();
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), columns, "row {line:?}");
        }
        // n = 4: Example 8's 4 rectangles cover exactly, |A| − |B| over 𝓛
        // is −2^{3m} = −8, and the [1, 4] cut is exactly scannable.
        let row4: Vec<&str> = csv.lines().nth(1).unwrap().split(',').collect();
        assert_eq!(row4[0], "4");
        assert_eq!(row4[1], "4");
        assert_eq!(row4[2], "true");
        assert_eq!(row4[5], "-8");
        let part = ucfg_core::partition::OrderedPartition::new(4, 1, 4);
        let exact = ucfg_core::discrepancy::exact_max_discrepancy_threads(4, part, 1).unwrap();
        assert_eq!(row4[6], exact.to_string());
        assert_eq!(row4[7], ucfg_core::rank::rank_gf2_threads(4, 1).to_string());
        // n = 8 keeps every column concrete too (all kernels feasible).
        let row8 = csv.lines().nth(2).unwrap();
        assert!(!row8.contains(CSV_NA), "no NA at n = 8: {row8:?}");
    }

    #[test]
    fn absent_fields_render_as_na_with_full_column_count() {
        let csv = sweep_csv(13, 1);
        let columns = CSV_HEADER.split(',').count();
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), columns, "row {line:?}");
            assert!(
                line.split(',').all(|cell| !cell.is_empty()),
                "no empty cells: {line:?}"
            );
        }
        // n = 13 is above the DAWG threshold (9) and not ≡ 0 mod 4, so its
        // row carries NA cells.
        let last = csv.lines().last().unwrap();
        assert!(last.contains(",NA"), "NA sentinel in {last:?}");
    }
}
