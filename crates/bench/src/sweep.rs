//! The Theorem 1 separation sweep as a library: a deterministic,
//! thread-parallel `n`-sweep rendered to the CSV consumed by the plotting
//! scripts. The `sweep` binary is a thin wrapper around [`sweep_csv`].
//!
//! Rows are computed on the [`ucfg_support::par`] layer, so worker counts
//! (including the `UCFG_THREADS` override) never change the bytes of the
//! output.

use ucfg_core::separation::{separation_row, SeparationRow};
use ucfg_support::par;

/// The CSV header line (without trailing newline).
///
/// Fields that are only computed below a size threshold (`nfa_exact`,
/// `ucfg_dawg`, `ucfg_lower_bound_log2`) render as the explicit sentinel
/// [`CSV_NA`] when absent, so every row always has the full column count
/// and naive CSV consumers never see trailing/empty cells.
pub const CSV_HEADER: &str =
    "n,ln_size_log2,cfg_size,nfa_pattern,nfa_exact,ucfg_dawg,ucfg_example4_log2,ucfg_lower_bound_log2";

/// The sentinel emitted for fields that were not computed at this `n`.
pub const CSV_NA: &str = "NA";

/// The `n` values visited by a sweep up to `max_n`: dense for small `n`,
/// then strides, then powers of two — and always ending **exactly at**
/// `max_n` (deduplicated when `max_n` already lands on a stride), so the
/// requested endpoint is never silently skipped.
pub fn sweep_schedule(max_n: usize) -> Vec<usize> {
    let mut ns = Vec::new();
    let mut n = 2usize;
    while n <= max_n {
        ns.push(n);
        n = if n < 16 {
            n + 2
        } else if n < 64 {
            n + 8
        } else {
            n * 2
        };
    }
    if max_n >= 2 && ns.last() != Some(&max_n) {
        ns.push(max_n);
    }
    ns
}

fn csv_row(n: usize, row: &SeparationRow) -> String {
    format!(
        "{},{:.3},{},{},{},{},{:.3},{}",
        n,
        row.language_size.log2_approx(),
        row.cfg_size,
        row.nfa_pattern_transitions,
        row.nfa_exact_transitions
            .map_or(CSV_NA.to_string(), |v| v.to_string()),
        row.ucfg_dawg_size
            .map_or(CSV_NA.to_string(), |v| v.to_string()),
        row.ucfg_example4_size.log2_approx(),
        row.ucfg_lower_bound_log2
            .map_or(CSV_NA.to_string(), |v| format!("{v:.3}")),
    )
}

/// Render the full sweep CSV (header + one row per scheduled `n`).
///
/// Rows are computed on up to `threads` workers of the deterministic
/// parallel map but always emitted in schedule order, and
/// `separation_row` itself is deterministic, so the output is
/// byte-identical for every `threads >= 1`.
pub fn sweep_csv(max_n: usize, threads: usize) -> String {
    let schedule = sweep_schedule(max_n);
    let rows = par::par_map_threads(&schedule, threads.max(1), |&n| {
        csv_row(n, &separation_row(n, 24, 9))
    });
    let mut csv = String::with_capacity(64 * (rows.len() + 1));
    csv.push_str(CSV_HEADER);
    csv.push('\n');
    for row in rows {
        csv.push_str(&row);
        csv.push('\n');
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_dense_then_strided() {
        assert_eq!(sweep_schedule(16), vec![2, 4, 6, 8, 10, 12, 14, 16]);
        assert_eq!(sweep_schedule(1), Vec::<usize>::new());
        let s = sweep_schedule(256);
        assert_eq!(s.last(), Some(&256));
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn schedule_always_ends_at_the_requested_endpoint() {
        // The regression: strides used to skip the endpoint entirely
        // (sweep_schedule(100) ended at 64, sweep_schedule(20) at 16).
        assert_eq!(
            sweep_schedule(100),
            vec![2, 4, 6, 8, 10, 12, 14, 16, 24, 32, 40, 48, 56, 64, 100]
        );
        assert_eq!(sweep_schedule(20), vec![2, 4, 6, 8, 10, 12, 14, 16, 20]);
        assert_eq!(sweep_schedule(2), vec![2]);
        assert_eq!(sweep_schedule(3), vec![2, 3]);
        for max_n in 2..=300usize {
            let s = sweep_schedule(max_n);
            assert_eq!(s.last(), Some(&max_n), "endpoint for max_n={max_n}");
            assert!(
                s.windows(2).all(|w| w[0] < w[1]),
                "strictly increasing, no duplicate endpoint (max_n={max_n})"
            );
        }
    }

    #[test]
    fn csv_is_byte_identical_across_thread_counts() {
        // max_n = 13 is off-stride, so this schedule exercises the
        // appended endpoint: 2, 4, 6, 8, 10, 12, 13.
        let single = sweep_csv(13, 1);
        for threads in [2, 3, 8] {
            assert_eq!(single, sweep_csv(13, threads), "threads = {threads}");
        }
        assert_eq!(single.lines().next(), Some(CSV_HEADER));
        assert_eq!(single.lines().count(), 1 + sweep_schedule(13).len());
        let last = single.lines().last().unwrap();
        assert!(last.starts_with("13,"), "endpoint row present: {last}");
    }

    #[test]
    fn absent_fields_render_as_na_with_full_column_count() {
        let csv = sweep_csv(13, 1);
        let columns = CSV_HEADER.split(',').count();
        for line in csv.lines() {
            assert_eq!(line.split(',').count(), columns, "row {line:?}");
            assert!(
                line.split(',').all(|cell| !cell.is_empty()),
                "no empty cells: {line:?}"
            );
        }
        // n = 13 is above the DAWG threshold (9) and not ≡ 0 mod 4, so its
        // row carries NA cells.
        let last = csv.lines().last().unwrap();
        assert!(last.contains(",NA"), "NA sentinel in {last:?}");
    }
}
