//! The Theorem 1 separation sweep as a library: a deterministic,
//! thread-parallel `n`-sweep rendered to the CSV consumed by the plotting
//! scripts. The `sweep` binary is a thin wrapper around [`sweep_csv`].

use std::thread;
use ucfg_core::separation::{separation_row, SeparationRow};

/// The CSV header line (without trailing newline).
pub const CSV_HEADER: &str =
    "n,ln_size_log2,cfg_size,nfa_pattern,nfa_exact,ucfg_dawg,ucfg_example4_log2,ucfg_lower_bound_log2";

/// The `n` values visited by a sweep up to `max_n`: dense for small `n`,
/// then strides, then powers of two.
pub fn sweep_schedule(max_n: usize) -> Vec<usize> {
    let mut ns = Vec::new();
    let mut n = 2usize;
    while n <= max_n {
        ns.push(n);
        n = if n < 16 {
            n + 2
        } else if n < 64 {
            n + 8
        } else {
            n * 2
        };
    }
    ns
}

fn csv_row(n: usize, row: &SeparationRow) -> String {
    format!(
        "{},{:.3},{},{},{},{},{:.3},{}",
        n,
        row.language_size.log2_approx(),
        row.cfg_size,
        row.nfa_pattern_transitions,
        row.nfa_exact_transitions
            .map_or(String::new(), |v| v.to_string()),
        row.ucfg_dawg_size.map_or(String::new(), |v| v.to_string()),
        row.ucfg_example4_size.log2_approx(),
        row.ucfg_lower_bound_log2
            .map_or(String::new(), |v| format!("{v:.3}")),
    )
}

/// Render the full sweep CSV (header + one row per scheduled `n`).
///
/// Rows are computed on up to `threads` worker threads but always emitted
/// in schedule order, and `separation_row` itself is deterministic, so the
/// output is byte-identical for every `threads >= 1`.
pub fn sweep_csv(max_n: usize, threads: usize) -> String {
    let schedule = sweep_schedule(max_n);
    if schedule.is_empty() {
        return format!("{CSV_HEADER}\n");
    }
    let threads = threads.clamp(1, schedule.len());
    let chunk = schedule.len().div_ceil(threads);
    let mut rows: Vec<String> = vec![String::new(); schedule.len()];
    thread::scope(|scope| {
        for (ns, out) in schedule.chunks(chunk).zip(rows.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (n, slot) in ns.iter().zip(out.iter_mut()) {
                    *slot = csv_row(*n, &separation_row(*n, 24, 9));
                }
            });
        }
    });
    let mut csv = String::with_capacity(64 * (rows.len() + 1));
    csv.push_str(CSV_HEADER);
    csv.push('\n');
    for row in rows {
        csv.push_str(&row);
        csv.push('\n');
    }
    csv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_dense_then_strided() {
        assert_eq!(sweep_schedule(16), vec![2, 4, 6, 8, 10, 12, 14, 16]);
        assert_eq!(sweep_schedule(1), Vec::<usize>::new());
        let s = sweep_schedule(256);
        assert_eq!(s.last(), Some(&256));
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn csv_is_byte_identical_across_thread_counts() {
        let single = sweep_csv(12, 1);
        for threads in [2, 3, 8] {
            assert_eq!(single, sweep_csv(12, threads), "threads = {threads}");
        }
        assert_eq!(single.lines().next(), Some(CSV_HEADER));
        assert_eq!(single.lines().count(), 1 + sweep_schedule(12).len());
    }
}
