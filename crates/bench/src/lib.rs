//! # ucfg-bench — experiment tables and in-tree benches
//!
//! [`experiments`] regenerates every table/figure of the reproduction
//! (DESIGN.md §5); `cargo run -p ucfg-bench --release --bin report` prints
//! them all. The benches under `benches/` run on the in-tree
//! `ucfg_support::bench` harness and time the hot paths (parsing,
//! counting, extraction, rank, joins) over parameter sweeps. [`sweep`]
//! renders the Theorem 1 separation CSV on a deterministic parallel
//! runner.

#![warn(missing_docs)]

pub mod experiments;
pub mod sweep;
