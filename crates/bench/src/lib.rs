//! # ucfg-bench — experiment tables, in-tree benches, and the orchestrator
//!
//! [`experiments`] regenerates every table/figure of the reproduction
//! (DESIGN.md §5); `cargo run -p ucfg-bench --release --bin report` prints
//! them all. The bench suites live in [`suites`] as library functions on
//! the in-tree `ucfg_support::bench` harness; the targets under `benches/`
//! and the unified `bench` binary are thin wrappers over the same
//! registry, so `cargo bench`, `bench --all`, and the orchestrator cannot
//! drift apart. [`sweep`] renders the Theorem 1 separation CSV on a
//! deterministic parallel runner. [`orchestrate`] runs the whole matrix —
//! experiments, bench suites, thread-pinned sweeps — as a cached,
//! dependency-aware job graph with an HTML report and a baseline
//! regression gate (`ucfg orchestrate`).

#![warn(missing_docs)]

pub mod experiments;
pub mod orchestrate;
pub mod suites;
pub mod sweep;
