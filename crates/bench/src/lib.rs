//! # ucfg-bench — experiment tables and Criterion benches
//!
//! [`experiments`] regenerates every table/figure of the reproduction
//! (DESIGN.md §5); `cargo run -p ucfg-bench --release --bin report` prints
//! them all. The Criterion benches under `benches/` time the hot paths
//! (parsing, counting, extraction, rank, joins) over parameter sweeps.

#![warn(missing_docs)]

pub mod experiments;
