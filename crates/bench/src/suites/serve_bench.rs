//! Request-latency benches against a live in-process serve daemon.
//!
//! One `ucfg_serve::Server` is bound on an ephemeral loopback port and
//! driven over real TCP by the blocking client, so the numbers include
//! the whole serving stack: socket, HTTP parsing, scheduler queue,
//! batch execution, and artifact cache. Three tiers:
//!
//! * `healthz` — the protocol floor (no grammar work at all);
//! * `parse/warm_hit` — one grammar repeated, so every request after
//!   the first finds its compiled `CykRuleIndex` in the cache;
//! * `parse/cold_miss` — more distinct grammars than the cache holds,
//!   cycled round-robin, so the LRU evicts every entry before reuse and
//!   every request pays CNF conversion + index compilation.
//!
//! The warm/cold gap in `out/BENCH_serve_bench.json` is the measured
//! value of the content-addressed cache (EXPERIMENTS.md quotes it).

use std::hint::black_box;
use std::time::Duration;
use ucfg_serve::{Client, ServeConfig, Server};
use ucfg_support::bench::{Options, Suite};

/// Distinct grammars for the cold tier: a shared productive core plus a
/// per-index tail of rules, so every text hashes differently.
fn distinct_grammar(i: usize) -> String {
    let mut g = String::from("S -> a S b S | ()\n");
    g.push_str("S -> a D b\nD -> b");
    for _ in 0..=i {
        g.push_str(" a");
    }
    g.push('\n');
    g
}

/// Build and execute the suite; the caller decides what to do with the
/// finished records (write them via [`Suite::finish`], or read them).
/// The in-process daemon is spawned on entry and gracefully shut down
/// before the suite is returned.
pub(super) fn build(opts: Options) -> Suite {
    // Small cache so the cold tier genuinely misses: 32 grammars cycled
    // through an 8-entry LRU never hit.
    const CACHE_CAPACITY: usize = 8;
    const DISTINCT: usize = 32;

    let server = Server::bind(ServeConfig {
        port: 0,
        cache_capacity: CACHE_CAPACITY,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral loopback port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.handle();
    let daemon = std::thread::spawn(move || server.run().expect("server run"));
    let mut client = Client::connect_retry(&addr, Duration::from_secs(5)).expect("connect");

    let grammars: Vec<String> = (0..DISTINCT)
        .map(|i| {
            let text = distinct_grammar(i).replace('\n', "\\n");
            format!("{{\"grammar\":\"{text}\",\"word\":\"aabb\"}}")
        })
        .collect();
    let warm_body = grammars[0].clone();

    let mut suite = Suite::with_options("serve_bench", opts);
    {
        let mut g = suite.group("request");
        g.bench("healthz", || {
            client
                .request("GET", "/healthz", None)
                .expect("healthz")
                .status
        });
    }
    {
        let mut g = suite.group("parse");
        // Prime the cache once so the warm tier is all hits.
        client
            .request("POST", "/parse", Some(&warm_body))
            .expect("prime");
        g.bench("warm_hit", || {
            let r = client
                .request("POST", "/parse", Some(black_box(&warm_body)))
                .expect("warm parse");
            assert_eq!(r.status, 200, "{}", r.body);
            r.body.len()
        });
        let mut next = 0usize;
        g.bench("cold_miss", || {
            let body = &grammars[next % DISTINCT];
            next += 1;
            let r = client
                .request("POST", "/parse", Some(black_box(body)))
                .expect("cold parse");
            assert_eq!(r.status, 200, "{}", r.body);
            r.body.len()
        });
    }
    handle.shutdown();
    daemon.join().expect("graceful daemon exit");
    suite
}
