//! The bench-suite registry: every suite as an in-process library
//! function, plus the single list of suite names that the bench targets,
//! the unified `bench` binary, the orchestrator, and CI all share.
//!
//! Each suite module exposes `build(opts) -> Suite`: it constructs the
//! suite, executes every registered benchmark under the given options
//! (timed, `--smoke`, or `--list`), and returns the suite with its
//! records so the caller can write `out/BENCH_<suite>.json` via
//! [`Suite::finish`] or read the JSON lines directly. The bench targets
//! under `benches/` are thin wrappers over [`harness_main`], so the
//! suite bodies live in exactly one place and `cargo bench` and
//! `ucfg orchestrate` cannot drift apart.

use ucfg_support::bench::{Options, Suite};

mod counting;
mod lower_bounds;
mod par_kernels;
mod parsing;
mod representations;
mod serve_bench;
mod simd_kernels;
mod stream_kernels;
mod wordset_kernels;

/// Every bench suite, in canonical order. This is the single source of
/// truth for "the nine bench suites": CI's bench-smoke job iterates
/// `bench --list` (which prints this), and the orchestrator's job matrix
/// is generated from it, so a suite added here is automatically picked
/// up by both.
pub const ALL_SUITES: &[&str] = &[
    "parsing",
    "counting",
    "lower_bounds",
    "representations",
    "par_kernels",
    "wordset_kernels",
    "simd_kernels",
    "serve_bench",
    "stream_kernels",
];

/// Build and execute the named suite under the given options. Returns
/// `None` for an unknown suite name.
pub fn build(name: &str, opts: Options) -> Option<Suite> {
    Some(match name {
        "parsing" => parsing::build(opts),
        "counting" => counting::build(opts),
        "lower_bounds" => lower_bounds::build(opts),
        "representations" => representations::build(opts),
        "par_kernels" => par_kernels::build(opts),
        "wordset_kernels" => wordset_kernels::build(opts),
        "simd_kernels" => simd_kernels::build(opts),
        "serve_bench" => serve_bench::build(opts),
        "stream_kernels" => stream_kernels::build(opts),
        _ => return None,
    })
}

/// The `main` shared by the thin `benches/*.rs` wrappers: parse harness
/// options from the process arguments, run the named suite, and write
/// its `BENCH_<suite>.json`.
pub fn harness_main(name: &str) {
    let opts = Options::parse(std::env::args().skip(1));
    let suite = build(name, opts)
        .unwrap_or_else(|| panic!("unknown bench suite {name:?} (known: {ALL_SUITES:?})"));
    suite.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_suite_exactly_once() {
        let mut names: Vec<&str> = ALL_SUITES.to_vec();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL_SUITES.len(), "duplicate suite name");
        for name in ALL_SUITES {
            let opts = Options::parse(["--list".to_string()].into_iter());
            let suite = build(name, opts).expect("registered suite builds");
            assert!(
                !suite.listed_ids().is_empty(),
                "suite {name} lists no benchmarks"
            );
        }
        assert!(build("no_such_suite", Options::default()).is_none());
    }
}
