//! Serial-vs-parallel kernel benches on the [`ucfg_support::par`] layer,
//! plus the scalar-vs-bitset CYK comparison. Each group times the serial
//! reference (`threads = 1`, the exact pre-parallel code path) against the
//! same kernel on the deterministic parallel map, so the emitted
//! `out/BENCH_par_kernels.json` records the speedup (or, on a single-core
//! runner, the scheduling overhead) side by side.
//!
//! The parallel ids bench at `max(UCFG_THREADS | cores, 2)` workers so the
//! chunked code path is always exercised, even where `thread_count()` is 1.

use std::hint::black_box;
use ucfg_core::cover::{example8_cover, verify_cover_threads};
use ucfg_core::discrepancy::{
    discrepancy_threads, exact_max_discrepancy_threads, random_family_rectangle,
};
use ucfg_core::ln_grammars::example4_ucfg;
use ucfg_core::partition::OrderedPartition;
use ucfg_core::rank::{rank_gf2_threads, rank_mod_p_threads};
use ucfg_core::words;
use ucfg_grammar::cyk::{CykChart, CykRuleIndex};
use ucfg_grammar::normal_form::CnfGrammar;
use ucfg_support::bench::{Options, Suite};
use ucfg_support::par;
use ucfg_support::rng::{SeedableRng, StdRng};

/// Worker count for the "parallel" ids: the machine's thread count, but at
/// least 2 so the chunked path (not the serial fallback) is what's timed.
fn par_threads() -> usize {
    par::thread_count().max(2)
}

fn bench_verify_cover(suite: &mut Suite) {
    let t = par_threads();
    let mut g = suite.group("verify_cover");
    for n in [6usize, 8] {
        let rects = example8_cover(n);
        g.bench(&format!("serial/{n}"), || {
            verify_cover_threads(black_box(n), &rects, 1).covers_exactly
        });
        g.bench(&format!("par{t}/{n}"), || {
            verify_cover_threads(black_box(n), &rects, t).covers_exactly
        });
    }
}

fn bench_discrepancy(suite: &mut Suite) {
    let t = par_threads();
    let mut g = suite.group("discrepancy");
    for n in [12usize, 16] {
        let mut rng = StdRng::seed_from_u64(1);
        let part = OrderedPartition::new(n, 1, n);
        let r = random_family_rectangle(n, part, &mut rng);
        g.bench(&format!("serial/{n}"), || {
            discrepancy_threads(black_box(n), &r, 1)
        });
        g.bench(&format!("par{t}/{n}"), || {
            discrepancy_threads(black_box(n), &r, t)
        });
    }
}

fn bench_exact_max_discrepancy(suite: &mut Suite) {
    let t = par_threads();
    let mut g = suite.group("exact_max_discrepancy");
    let n = 4usize;
    let part = OrderedPartition::new(n, 1, n);
    g.bench(&format!("serial/{n}"), || {
        exact_max_discrepancy_threads(black_box(n), part, 1)
    });
    g.bench(&format!("par{t}/{n}"), || {
        exact_max_discrepancy_threads(black_box(n), part, t)
    });
}

fn bench_rank(suite: &mut Suite) {
    let t = par_threads();
    let mut g = suite.group("rank");
    for n in [8usize, 10] {
        g.bench(&format!("gf2_serial/{n}"), || {
            rank_gf2_threads(black_box(n), 1)
        });
        g.bench(&format!("gf2_par{t}/{n}"), || {
            rank_gf2_threads(black_box(n), t)
        });
    }
    let n = 7usize;
    g.bench(&format!("mod_p_serial/{n}"), || {
        rank_mod_p_threads(black_box(n), 1)
    });
    g.bench(&format!("mod_p_par{t}/{n}"), || {
        rank_mod_p_threads(black_box(n), t)
    });
}

fn bench_enumerate_ln(suite: &mut Suite) {
    let t = par_threads();
    let mut g = suite.group("enumerate_ln");
    for n in [8usize, 10] {
        g.bench(&format!("serial/{n}"), || {
            words::enumerate_ln_threads(black_box(n), 1).len()
        });
        g.bench(&format!("par{t}/{n}"), || {
            words::enumerate_ln_threads(black_box(n), t).len()
        });
    }
}

fn bench_cyk_kernels(suite: &mut Suite) {
    let mut g = suite.group("cyk_kernel");
    for n in [4usize, 5] {
        let cnf = CnfGrammar::from_grammar(&example4_ucfg(n));
        let inputs: Vec<Vec<_>> = (0..16u64)
            .map(|i| {
                let w = i.wrapping_mul(0x9e3779b97f4a7c15) & words::low_mask(2 * n);
                cnf.encode(&words::to_string(n, w)).unwrap()
            })
            .collect();
        g.bench(&format!("scalar/{n}"), || {
            let mut acc = 0usize;
            for w in &inputs {
                acc += usize::from(CykChart::build_scalar(black_box(&cnf), w).accepted());
            }
            acc
        });
        g.bench(&format!("bitset/{n}"), || {
            let mut acc = 0usize;
            for w in &inputs {
                acc += usize::from(CykChart::build(black_box(&cnf), w).accepted());
            }
            acc
        });
        let index = CykRuleIndex::new(&cnf);
        g.bench(&format!("bitset_reused_index/{n}"), || {
            let mut acc = 0usize;
            for w in &inputs {
                acc +=
                    usize::from(CykChart::build_with_index(black_box(&cnf), &index, w).accepted());
            }
            acc
        });
    }
}

/// Build and execute the suite; the caller decides what to do with the
/// finished records (write them via [`Suite::finish`], or read them).
pub(super) fn build(opts: Options) -> Suite {
    let mut suite = Suite::with_options("par_kernels", opts);
    bench_verify_cover(&mut suite);
    bench_discrepancy(&mut suite);
    bench_exact_max_discrepancy(&mut suite);
    bench_rank(&mut suite);
    bench_enumerate_ln(&mut suite);
    bench_cyk_kernels(&mut suite);
    suite
}
