//! Representation-building benches (experiments T1/T3/T11/T12 timing
//! side): constructing the paper's grammars, CNF conversion, Lemma 10
//! annotation, DAWG construction, and the circuit isomorphism.

use std::hint::black_box;
use ucfg_automata::dawg::DawgBuilder;
use ucfg_automata::ln_nfa::{exact_nfa, pattern_nfa};
use ucfg_core::ln_grammars::{appendix_a_grammar, example4_ucfg};
use ucfg_core::words;
use ucfg_factorized::convert::grammar_to_circuit;
use ucfg_grammar::annotated::annotate;
use ucfg_grammar::normal_form::CnfGrammar;
use ucfg_support::bench::{Options, Suite};

fn bench_grammar_construction(suite: &mut Suite) {
    let mut g = suite.group("grammar_construction");
    for n in [256usize, 4096, 65536] {
        g.bench(&format!("appendixA/{n}"), || {
            appendix_a_grammar(black_box(n)).size()
        });
    }
    for n in [6usize, 8, 10] {
        g.bench(&format!("example4_ucfg/{n}"), || {
            example4_ucfg(black_box(n)).size()
        });
    }
}

fn bench_cnf_and_annotation(suite: &mut Suite) {
    let mut g = suite.group("transformations");
    for n in [3usize, 4, 5] {
        let gr = example4_ucfg(n);
        g.bench(&format!("cnf/{n}"), || {
            CnfGrammar::from_grammar(black_box(&gr)).size()
        });
        let cnf = CnfGrammar::from_grammar(&gr);
        g.bench(&format!("annotate/{n}"), || {
            annotate(black_box(&cnf), 2 * n).unwrap().cnf.size()
        });
        g.bench(&format!("to_circuit/{n}"), || {
            grammar_to_circuit(black_box(&gr)).unwrap().size()
        });
    }
}

fn bench_dawg(suite: &mut Suite) {
    let mut g = suite.group("dawg_build");
    for n in [5usize, 6, 7] {
        let mut sorted: Vec<String> = words::enumerate_ln(n)
            .into_iter()
            .map(|w| words::to_string(n, w))
            .collect();
        sorted.sort();
        g.bench(&format!("ln_words/{n}"), || {
            let mut builder = DawgBuilder::new(&['a', 'b']);
            for w in &sorted {
                builder.add(black_box(w));
            }
            builder.finish().state_count()
        });
    }
}

fn bench_nfa_construction(suite: &mut Suite) {
    let mut g = suite.group("nfa_construction");
    for n in [32usize, 64, 128] {
        g.bench(&format!("pattern/{n}"), || {
            pattern_nfa(black_box(n)).transition_count()
        });
    }
    for n in [8usize, 16, 32] {
        g.bench(&format!("exact_product/{n}"), || {
            exact_nfa(black_box(n)).transition_count()
        });
    }
}

fn bench_regex(suite: &mut Suite) {
    use ucfg_automata::regex::Regex;
    let mut g = suite.group("regex_glushkov");
    let patterns = [
        ("ln_pattern", "(a|b)*a(a|b)(a|b)(a|b)a(a|b)*"),
        ("nested_star", "((a|b)(ab)*b?)*"),
    ];
    for (name, pat) in patterns {
        let r = Regex::parse(pat).unwrap();
        g.bench(&format!("construct/{name}"), || {
            black_box(&r).glushkov().transition_count()
        });
        let nfa = r.glushkov();
        let word = "abababbaabab";
        g.bench(&format!("match/{name}"), || black_box(&nfa).accepts(word));
    }
}

/// Build and execute the suite; the caller decides what to do with the
/// finished records (write them via [`Suite::finish`], or read them).
pub(super) fn build(opts: Options) -> Suite {
    let mut suite = Suite::with_options("representations", opts);
    bench_grammar_construction(&mut suite);
    bench_cnf_and_annotation(&mut suite);
    bench_dawg(&mut suite);
    bench_nfa_construction(&mut suite);
    bench_regex(&mut suite);
    suite
}
