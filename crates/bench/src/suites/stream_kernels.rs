//! Streaming-parse kernels: the incremental-Earley delta against the
//! full-reparse baseline, across window sizes.
//!
//! Three tiers per window size `W` ∈ {64, 256, 1024}:
//!
//! * `append/incremental/wW` — steady state: a [`WindowParser`] already
//!   holding `W` tokens absorbs one more (scan the last Earley set,
//!   close the new one, evict the front — work bounded by the chart
//!   delta, not the window);
//! * `append/full_reparse/wW` — what the same arrival costs without the
//!   subsystem: re-recognize the whole `W`-token window from scratch;
//! * `product/sync/wW` — the `CFG ∩ regex` layer's per-token cost: push
//!   the token through the tracked DFA states and re-sync suffixes.
//!
//! The `incremental` / `full_reparse` ratio in `out/BENCH_stream.json`
//! is the acceptance number EXPERIMENTS.md quotes (≥ 5× at `W` ≥ 256).

use std::hint::black_box;
use std::sync::Arc;
use ucfg_grammar::earley::Earley;
use ucfg_grammar::text::parse_grammar;
use ucfg_stream::{ProductQuery, WindowParser};
use ucfg_support::bench::{Options, Suite};

const WINDOWS: [usize; 3] = [64, 256, 1024];

/// Build and execute the suite; see the module docs for the tiers.
pub(super) fn build(opts: Options) -> Suite {
    // The balanced-pairs grammar over {a, b}: unbounded nesting keeps
    // the Earley charts honest (items carry real origin spread), and
    // the "ab" cycle below keeps every window prefix parseable.
    let g = Arc::new(parse_grammar("S -> a S b S | ()").expect("bench grammar"));

    let mut suite = Suite::with_options("stream", opts);
    {
        let mut grp = suite.group("append");
        for &w in &WINDOWS {
            let tokens = g.encode(&"ab".repeat(w)).expect("alphabet");
            // Pre-fill to capacity so every timed push is steady state:
            // one scan + close + front eviction, never a cold start.
            let mut parser = WindowParser::new(Arc::clone(&g), w);
            for &t in &tokens {
                parser.push(t);
            }
            let mut i = 0usize;
            grp.bench(&format!("incremental/w{w}"), move || {
                let t = tokens[i % tokens.len()];
                i += 1;
                black_box(parser.push(t))
            });
        }
        for &w in &WINDOWS {
            let tokens = g.encode(&"ab".repeat(w / 2)).expect("alphabet");
            let earley = Earley::new(&g);
            grp.bench(&format!("full_reparse/w{w}"), || {
                black_box(earley.recognize(black_box(&tokens)))
            });
        }
    }
    {
        let mut grp = suite.group("product");
        for &w in &WINDOWS {
            let tokens = g.encode(&"ab".repeat(w)).expect("alphabet");
            let mut parser = WindowParser::new(Arc::clone(&g), w);
            let mut q = ProductQuery::compile(&g, "a(a|b)*b").expect("regex");
            for &t in &tokens {
                parser.push(t);
                q.push(t);
                q.sync(&parser);
            }
            let mut i = 0usize;
            grp.bench(&format!("sync/w{w}"), move || {
                let t = tokens[i % tokens.len()];
                i += 1;
                parser.push(t);
                q.push(t);
                q.sync(&parser);
                black_box(q.window_matches(&parser))
            });
        }
    }
    suite
}
