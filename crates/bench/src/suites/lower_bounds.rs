//! Lower-bound machinery benches (experiments T5/T7/T8/T10 timing side):
//! the Proposition 7 extraction, discrepancy evaluation over 𝓛, the rank
//! certificates, and the Lemma 21 neat decomposition.

use std::hint::black_box;
use ucfg_core::discrepancy::{
    adversarial_rectangle, discrepancy, enumerate_family, random_family_rectangle,
};
use ucfg_core::extract::extract_cover;
use ucfg_core::ln_grammars::example4_ucfg;
use ucfg_core::neat::neat_decomposition;
use ucfg_core::partition::OrderedPartition;
use ucfg_core::rank::{rank_gf2, rank_mod_p};
use ucfg_grammar::normal_form::CnfGrammar;
use ucfg_support::bench::{Options, Suite};
use ucfg_support::rng::{SeedableRng, StdRng};

fn bench_extraction(suite: &mut Suite) {
    let mut g = suite.group("prop7_extraction");
    for n in [2usize, 3] {
        let cnf = CnfGrammar::from_grammar(&example4_ucfg(n));
        g.bench(&format!("example4_ucfg/{n}"), || {
            extract_cover(black_box(&cnf), 2 * n)
                .unwrap()
                .rectangles
                .len()
        });
    }
}

fn bench_discrepancy(suite: &mut Suite) {
    let mut g = suite.group("discrepancy");
    for n in [8usize, 12, 16] {
        g.bench(&format!("enumerate_family/{n}"), || {
            enumerate_family(black_box(n)).len()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let part = OrderedPartition::new(n, 1, n);
        let r = random_family_rectangle(n, part, &mut rng);
        g.bench(&format!("rectangle_discrepancy/{n}"), || {
            discrepancy(n, black_box(&r))
        });
    }
}

fn bench_adversarial(suite: &mut Suite) {
    let mut g = suite.group("adversarial_search");
    for n in [8usize, 12] {
        g.bench(&format!("alternating_max/{n}"), || {
            let mut rng = StdRng::seed_from_u64(7);
            let part = OrderedPartition::new(n, 1, n);
            adversarial_rectangle(black_box(n), part, 2, &mut rng).1
        });
    }
}

fn bench_rank(suite: &mut Suite) {
    let mut g = suite.group("rank_bound");
    for n in [6usize, 8, 10] {
        g.bench(&format!("gf2/{n}"), || rank_gf2(black_box(n)));
    }
    for n in [5usize, 7] {
        g.bench(&format!("mod_p/{n}"), || rank_mod_p(black_box(n)));
    }
}

fn bench_neat(suite: &mut Suite) {
    let mut g = suite.group("neat_decomposition");
    for n in [8usize, 12] {
        let mut rng = StdRng::seed_from_u64(2);
        let part = OrderedPartition::new(n, 3, n + 2);
        let r = random_family_rectangle(n, part, &mut rng);
        g.bench(&format!("lemma21/{n}"), || {
            neat_decomposition(black_box(&r)).map(|d| d.pieces.len())
        });
    }
}

fn bench_greedy_covers(suite: &mut Suite) {
    use ucfg_core::greedy_cover::{greedy_disjoint_cover, greedy_disjoint_cover_middle_cut};
    let mut g = suite.group("greedy_cover");
    for n in [4usize, 5] {
        g.bench(&format!("multi_partition/{n}"), || {
            greedy_disjoint_cover(black_box(n)).len()
        });
        g.bench(&format!("middle_cut/{n}"), || {
            greedy_disjoint_cover_middle_cut(black_box(n)).len()
        });
    }
}

fn bench_degree_classification(suite: &mut Suite) {
    use ucfg_automata::degree::classify;
    use ucfg_automata::ln_nfa::{exact_nfa, pattern_nfa};
    let mut g = suite.group("nfa_degree");
    for n in [3usize, 4] {
        let exact = exact_nfa(n);
        g.bench(&format!("exact_nfa/{n}"), || classify(black_box(&exact)));
        let pat = pattern_nfa(n);
        g.bench(&format!("pattern_nfa/{n}"), || classify(black_box(&pat)));
    }
}

fn bench_fooling_and_exact_disc(suite: &mut Suite) {
    use ucfg_core::comm::greedy_fooling_set;
    use ucfg_core::discrepancy::exact_max_discrepancy;
    let mut g = suite.group("comm_bounds");
    for n in [4usize, 6] {
        let part = OrderedPartition::new(n, 1, n);
        g.bench(&format!("greedy_fooling/{n}"), || {
            greedy_fooling_set(black_box(n), part).len()
        });
    }
    let part4 = OrderedPartition::new(4, 1, 4);
    g.bench("exact_max_discrepancy_n4", || {
        exact_max_discrepancy(black_box(4), part4)
    });
}

/// Build and execute the suite; the caller decides what to do with the
/// finished records (write them via [`Suite::finish`], or read them).
pub(super) fn build(opts: Options) -> Suite {
    let mut suite = Suite::with_options("lower_bounds", opts);
    bench_extraction(&mut suite);
    bench_discrepancy(&mut suite);
    bench_adversarial(&mut suite);
    bench_rank(&mut suite);
    bench_neat(&mut suite);
    bench_greedy_covers(&mut suite);
    bench_degree_classification(&mut suite);
    bench_fooling_and_exact_disc(&mut suite);
    suite
}
