//! Dispatched-vs-scalar benches on the [`ucfg_support::simd`] layer.
//!
//! Every group times the runtime-dispatched entry point (AVX2 where the
//! CPU has it, scalar under `UCFG_NO_SIMD=1`) against its always-scalar
//! twin on the exact same buffers, so `out/BENCH_simd_kernels.json`
//! records the raw kernel speedup side by side — the per-op analogue of
//! the end-to-end numbers in `wordset_kernels`. Slice lengths cover an
//! L1-resident working set, an L2-sized one, and a ragged length that
//! leaves a scalar remainder after the 256-bit lanes.

use std::hint::black_box;
use ucfg_support::bench::{Options, Suite};
use ucfg_support::simd;

/// Word counts: 1 KiB, 128 KiB, and a lane-ragged tail (4·k + 3).
const LENS: &[usize] = &[128, 16_384, 4_099];

fn buf(len: usize, seed: u64) -> Vec<u64> {
    (0..len as u64)
        .map(|i| (i ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .collect()
}

fn bench_counts(suite: &mut Suite) {
    let mut g = suite.group("popcount");
    for &len in LENS {
        let a = buf(len, 0xA5);
        g.bench(&format!("dispatch/{len}"), || simd::count(black_box(&a)));
        g.bench(&format!("scalar/{len}"), || {
            simd::count_scalar(black_box(&a))
        });
    }
}

fn bench_fused(suite: &mut Suite) {
    let mut g = suite.group("fused_and_count");
    for &len in LENS {
        let a = buf(len, 0xA5);
        let b = buf(len, 0x5A);
        g.bench(&format!("dispatch/{len}"), || {
            simd::and_count(black_box(&a), black_box(&b))
        });
        g.bench(&format!("scalar/{len}"), || {
            simd::and_count_scalar(black_box(&a), black_box(&b))
        });
    }
    let mut g = suite.group("fused_andnot_count");
    for &len in LENS {
        let a = buf(len, 0xC3);
        let b = buf(len, 0x3C);
        g.bench(&format!("dispatch/{len}"), || {
            simd::andnot_count(black_box(&a), black_box(&b))
        });
        g.bench(&format!("scalar/{len}"), || {
            simd::andnot_count_scalar(black_box(&a), black_box(&b))
        });
    }
}

fn bench_assign(suite: &mut Suite) {
    let mut g = suite.group("or_assign");
    for &len in LENS {
        let src = buf(len, 0x77);
        let mut dst = buf(len, 0x11);
        g.bench(&format!("dispatch/{len}"), || {
            simd::or_assign(black_box(&mut dst), black_box(&src));
            dst[0]
        });
        let mut dst = buf(len, 0x11);
        g.bench(&format!("scalar/{len}"), || {
            simd::or_assign_scalar(black_box(&mut dst), black_box(&src));
            dst[0]
        });
    }
}

/// Build and run the suite under `opts`.
pub(super) fn build(opts: Options) -> Suite {
    let mut suite = Suite::with_options("simd_kernels", opts);
    bench_counts(&mut suite);
    bench_fused(&mut suite);
    bench_assign(&mut suite);
    suite
}
