//! Scalar-vs-bitmap kernel benches for the popcount word-set layer. Each
//! group times the retained `*_scalar` reference (per-word membership
//! probes over `2^{2n}` words or per-member rescans of `𝓛`) against the
//! same kernel on [`ucfg_core::wordset`] bitmaps, so the emitted
//! `out/BENCH_wordset_kernels.json` records the speedup side by side —
//! the source of the table in EXPERIMENTS.md.
//!
//! The `gray_scan` group is the acceptance scan: a full `2^26`-subset
//! Gray-code walk (the raised `EXACT_MAX_T_PATTERNS` cap) over a synthetic
//! score matrix, which no real partition at a benchable `n` reaches.

use std::hint::black_box;
use ucfg_core::cover::{
    discrepancy_accounting_scalar, discrepancy_accounting_threads, example8_cover,
    overlap_histogram_scalar, overlap_histogram_threads, verify_cover_scalar_threads,
    verify_cover_threads,
};
use ucfg_core::discrepancy::{
    discrepancy_scalar, discrepancy_threads, exact_max_discrepancy_scalar_threads,
    exact_max_discrepancy_threads, gray_subset_max_threads, random_family_rectangle,
    EXACT_MAX_T_PATTERNS,
};
use ucfg_core::partition::OrderedPartition;
use ucfg_core::rank::{rank_gf2_scalar_threads, rank_gf2_threads};
use ucfg_support::bench::{Options, Suite};
use ucfg_support::par;
use ucfg_support::rng::{SeedableRng, StdRng};

/// Worker count for the parallel Gray-scan id: at least 2 so the chunked
/// path is exercised even where `thread_count()` is 1.
fn par_threads() -> usize {
    par::thread_count().max(2)
}

fn bench_verify_cover(suite: &mut Suite) {
    let mut g = suite.group("verify_cover");
    for n in [8usize, 10] {
        let rects = example8_cover(n);
        g.bench(&format!("scalar/{n}"), || {
            verify_cover_scalar_threads(black_box(n), &rects, 1).covers_exactly
        });
        g.bench(&format!("bitmap/{n}"), || {
            verify_cover_threads(black_box(n), &rects, 1).covers_exactly
        });
    }
}

fn bench_discrepancy(suite: &mut Suite) {
    use ucfg_core::discrepancy::family_side_patterns;
    use ucfg_core::rectangle::SetRectangle;
    let mut g = suite.group("discrepancy");
    // 𝓛 needs n ≡ 0 (mod 4); 12 and 16 bracket the issue's n = 10 target.
    for n in [12usize, 16] {
        let part = OrderedPartition::new(n, 1, n);
        // Headline: a sparse rectangle (every 4th side pattern), the shape
        // extracted covers actually produce. The scalar kernel rescans all
        // 2^n of 𝓛 regardless; the bitmap build is output-sensitive in
        // |S|·|T|, which is where the win comes from.
        let (s_all, t_all) = family_side_patterns(n, part);
        let sparse = SetRectangle::new(
            part,
            s_all.iter().copied().step_by(4).collect(),
            t_all.iter().copied().step_by(4).collect(),
        );
        g.bench(&format!("scalar/{n}"), || {
            discrepancy_scalar(black_box(n), &sparse)
        });
        g.bench(&format!("bitmap/{n}"), || {
            discrepancy_threads(black_box(n), &sparse, 1)
        });
        // Worst case for the bitmap path: a dense random rectangle whose
        // |S|·|T| is the same order as |𝓛| itself.
        let mut rng = StdRng::seed_from_u64(1);
        let dense = random_family_rectangle(n, part, &mut rng);
        g.bench(&format!("scalar_dense/{n}"), || {
            discrepancy_scalar(black_box(n), &dense)
        });
        g.bench(&format!("bitmap_dense/{n}"), || {
            discrepancy_threads(black_box(n), &dense, 1)
        });
    }
}

fn bench_histogram_and_accounting(suite: &mut Suite) {
    let n = 8usize;
    let mut rng = StdRng::seed_from_u64(2);
    let mut rects = example8_cover(n);
    let part = OrderedPartition::new(n, 1, n);
    rects.push(random_family_rectangle(n, part, &mut rng));
    let mut g = suite.group("overlap_histogram");
    g.bench(&format!("scalar/{n}"), || {
        overlap_histogram_scalar(black_box(n), &rects).len()
    });
    g.bench(&format!("bitmap/{n}"), || {
        overlap_histogram_threads(black_box(n), &rects, 1).len()
    });
    drop(g);
    // Accounting at n = 12: with only 2^8 family members the per-rectangle
    // bitmap setup dominates at n = 8, so bench where the scan is hot.
    let n = 12usize;
    let mut rects = example8_cover(n);
    let part = OrderedPartition::new(n, 1, n);
    rects.push(random_family_rectangle(n, part, &mut rng));
    let mut g = suite.group("discrepancy_accounting");
    g.bench(&format!("scalar/{n}"), || {
        discrepancy_accounting_scalar(black_box(n), &rects).0.len()
    });
    g.bench(&format!("bitmap/{n}"), || {
        discrepancy_accounting_threads(black_box(n), &rects, 1)
            .0
            .len()
    });
}

fn bench_exact_max(suite: &mut Suite) {
    let mut g = suite.group("exact_max_discrepancy");
    // n = 4 is every-partition territory; n = 8's [1, n] cut has 16
    // T-patterns, a 2^16-subset scan where the O(rows)-per-step Gray walk
    // pulls away from the O(rows·|T|) rescan.
    for n in [4usize, 8] {
        let part = OrderedPartition::new(n, 1, n);
        g.bench(&format!("scalar_rescan/{n}"), || {
            exact_max_discrepancy_scalar_threads(black_box(n), part, 1)
        });
        g.bench(&format!("gray/{n}"), || {
            exact_max_discrepancy_threads(black_box(n), part, 1)
        });
    }
}

fn bench_gray_scan_full_cap(suite: &mut Suite) {
    // The acceptance scan: all 2^26 T-subsets at the raised cap, over a
    // synthetic 8-row score matrix (real partitions only reach pattern
    // counts that are products of {2,3,4}, so 26 never occurs in nature).
    let t = par_threads();
    let (rows, cols) = (8usize, EXACT_MAX_T_PATTERNS);
    let f: Vec<i64> = (0..rows * cols)
        .map(|k| ((k * 2654435761) % 7) as i64 - 3)
        .collect();
    let mut g = suite.group("gray_scan_2pow26");
    g.bench(&format!("serial/{rows}x{cols}"), || {
        gray_subset_max_threads(black_box(&f), rows, cols, 1)
    });
    g.bench(&format!("par{t}/{rows}x{cols}"), || {
        gray_subset_max_threads(black_box(&f), rows, cols, t)
    });
}

fn bench_chunked(suite: &mut Suite) {
    use ucfg_core::cover::cover_scan_threads;
    use ucfg_core::wordset::chunked::{cover_scan_chunked_threads, logical_word_domain, ChunkPlan};
    // The streamed path against the in-memory pass on the same input, at
    // an n where both run: the delta is the price of chunking (extra
    // `L_n` rebuild per chunk, no cached bitmap), paid to go past the cap.
    let t = par_threads();
    let mut g = suite.group("chunked");
    for n in [10usize, 12] {
        let rects = example8_cover(n);
        g.bench(&format!("in_memory/{n}"), || {
            cover_scan_threads(black_box(n), &rects, 1).union_count
        });
        for chunk_log2 in [16u32, 20] {
            let plan = ChunkPlan::with_chunk_bits(logical_word_domain(n), 1 << chunk_log2);
            g.bench(&format!("chunk_2pow{chunk_log2}/{n}"), || {
                cover_scan_chunked_threads(black_box(n), &rects, 1, &plan).union_count
            });
            g.bench(&format!("chunk_2pow{chunk_log2}_par{t}/{n}"), || {
                cover_scan_chunked_threads(black_box(n), &rects, t, &plan).union_count
            });
        }
    }
}

fn bench_rank(suite: &mut Suite) {
    let mut g = suite.group("rank_gf2");
    let n = 10usize;
    g.bench(&format!("scalar/{n}"), || {
        rank_gf2_scalar_threads(black_box(n), 1)
    });
    g.bench(&format!("subset_enum/{n}"), || {
        rank_gf2_threads(black_box(n), 1)
    });
}

/// Build and execute the suite; the caller decides what to do with the
/// finished records (write them via [`Suite::finish`], or read them).
pub(super) fn build(opts: Options) -> Suite {
    let mut suite = Suite::with_options("wordset_kernels", opts);
    bench_verify_cover(&mut suite);
    bench_discrepancy(&mut suite);
    bench_histogram_and_accounting(&mut suite);
    bench_exact_max(&mut suite);
    bench_gray_scan_full_cap(&mut suite);
    bench_chunked(&mut suite);
    bench_rank(&mut suite);
    suite
}
