//! Parsing benches: membership and parse-forest work on the paper's
//! grammars and automata (experiments F1/T1/T2 timing side).

use std::hint::black_box;
use ucfg_automata::ln_nfa::{exact_nfa, pattern_nfa};
use ucfg_core::ln_grammars::{appendix_a_grammar, example4_ucfg};
use ucfg_core::words;
use ucfg_grammar::cyk::CykChart;
use ucfg_grammar::earley::Earley;
use ucfg_grammar::normal_form::CnfGrammar;
use ucfg_grammar::parse_tree::FixedLenParser;
use ucfg_support::bench::{Options, Suite};

fn some_words(n: usize, how_many: usize) -> Vec<String> {
    // Deterministic mix of members and non-members of L_n.
    (0..how_many as u64)
        .map(|i| {
            words::to_string(
                n,
                i.wrapping_mul(0x9e3779b97f4a7c15) & words::low_mask(2 * n),
            )
        })
        .collect()
}

fn bench_cyk(suite: &mut Suite) {
    let mut g = suite.group("cyk_recognize");
    for n in [3usize, 4, 5] {
        let cnf = CnfGrammar::from_grammar(&example4_ucfg(n));
        let inputs: Vec<Vec<_>> = some_words(n, 16)
            .iter()
            .map(|w| cnf.encode(w).unwrap())
            .collect();
        g.bench(&format!("example4_ucfg/{n}"), || {
            let mut acc = 0usize;
            for w in &inputs {
                acc += usize::from(CykChart::build(black_box(&cnf), w).accepted());
            }
            acc
        });
    }
}

fn bench_cyk_count(suite: &mut Suite) {
    let mut g = suite.group("cyk_count_trees");
    for n in [3usize, 4] {
        let cnf = CnfGrammar::from_grammar(&appendix_a_grammar(n));
        let all_a = cnf.encode(&"a".repeat(2 * n)).unwrap();
        g.bench(&format!("appendixA_all_a/{n}"), || {
            CykChart::build(black_box(&cnf), &all_a).count_trees()
        });
    }
}

fn bench_fixed_len_parser(suite: &mut Suite) {
    let mut g = suite.group("fixed_len_parser");
    for n in [4usize, 6] {
        let gr = appendix_a_grammar(n);
        let parser = FixedLenParser::new(&gr).unwrap();
        let inputs: Vec<Vec<_>> = some_words(n, 16)
            .iter()
            .map(|w| gr.encode(w).unwrap())
            .collect();
        g.bench(&format!("appendixA_count/{n}"), || {
            let mut acc = 0u64;
            for w in &inputs {
                acc += parser
                    .count_trees(black_box(w))
                    .to_u64()
                    .unwrap_or(u64::MAX);
            }
            acc
        });
    }
}

fn bench_earley(suite: &mut Suite) {
    let mut g = suite.group("earley_recognize");
    for n in [3usize, 4] {
        let gr = appendix_a_grammar(n);
        let e = Earley::new(&gr);
        let inputs = some_words(n, 8);
        g.bench(&format!("appendixA/{n}"), || {
            let mut acc = 0usize;
            for w in &inputs {
                acc += usize::from(e.recognize_str(black_box(w)));
            }
            acc
        });
    }
}

fn bench_nfa(suite: &mut Suite) {
    let mut g = suite.group("nfa_accepts");
    for n in [8usize, 16, 32] {
        let pat = pattern_nfa(n);
        let exact = exact_nfa(n);
        let inputs = some_words(n, 32);
        g.bench(&format!("pattern/{n}"), || {
            inputs.iter().filter(|w| pat.accepts(black_box(w))).count()
        });
        g.bench(&format!("exact/{n}"), || {
            inputs
                .iter()
                .filter(|w| exact.accepts(black_box(w)))
                .count()
        });
    }
}

/// Build and execute the suite; the caller decides what to do with the
/// finished records (write them via [`Suite::finish`], or read them).
pub(super) fn build(opts: Options) -> Suite {
    let mut suite = Suite::with_options("parsing", opts);
    bench_cyk(&mut suite);
    bench_cyk_count(&mut suite);
    bench_fixed_len_parser(&mut suite);
    bench_earley(&mut suite);
    bench_nfa(&mut suite);
    suite
}
