//! Counting benches (experiment T13/T15 timing side): the algorithmic win
//! of unambiguity — linear-time DP on the uCFG / deterministic circuit vs
//! materialisation — and the factorised-join gap.

use std::hint::black_box;
use ucfg_automata::ln_nfa::exact_nfa;
use ucfg_core::ln_grammars::{appendix_a_grammar, example4_ucfg};
use ucfg_factorized::convert::grammar_to_circuit;
use ucfg_factorized::join::{
    complete_chain, factorized_path_join, materialized_path_join, path_join_count,
};
use ucfg_grammar::count::derivation_counts_by_length;
use ucfg_grammar::language::word_counts_by_length;
use ucfg_grammar::normal_form::CnfGrammar;
use ucfg_support::bench::{Options, Suite};

fn bench_count_ln(suite: &mut Suite) {
    let mut g = suite.group("count_ln_words");
    for n in [4usize, 5, 6] {
        // (a) uCFG derivation-count DP: counts words because unambiguous.
        let ucfg = CnfGrammar::from_grammar(&example4_ucfg(n));
        g.bench(&format!("ucfg_dp/{n}"), || {
            derivation_counts_by_length(black_box(&ucfg), 2 * n).pop()
        });
        // (b) ambiguous CFG: the same DP over-counts, so words must be
        // materialised and deduplicated.
        let cfg = CnfGrammar::from_grammar(&appendix_a_grammar(n));
        g.bench(&format!("ambiguous_materialize/{n}"), || {
            word_counts_by_length(black_box(&cfg), 2 * n).pop()
        });
        // (c) deterministic circuit.
        let circ = grammar_to_circuit(&example4_ucfg(n)).unwrap();
        g.bench(&format!("circuit/{n}"), || {
            black_box(&circ).count_derivations()
        });
    }
}

fn bench_count_automata(suite: &mut Suite) {
    let mut g = suite.group("count_via_automata");
    for n in [4usize, 6, 8] {
        let nfa = exact_nfa(n);
        g.bench(&format!("nfa_subset_count/{n}"), || {
            black_box(&nfa).accepted_word_counts(2 * n).pop()
        });
    }
}

fn bench_factorized_join(suite: &mut Suite) {
    let mut g = suite.group("factorized_join");
    for (d, k) in [(3u32, 5usize), (4, 6)] {
        let rels = complete_chain(d, k);
        g.bench(&format!("build_circuit/d{d}k{k}"), || {
            factorized_path_join(black_box(&rels)).size()
        });
        g.bench(&format!("count_dp/d{d}k{k}"), || {
            path_join_count(black_box(&rels))
        });
        g.bench(&format!("materialize/d{d}k{k}"), || {
            materialized_path_join(black_box(&rels)).len()
        });
    }
}

fn bench_semiring_inside(suite: &mut Suite) {
    use ucfg_grammar::weighted::{inside_at, Count, MinPlus, TableWeights, UnitWeights};
    let mut g = suite.group("semiring_inside");
    for n in [4usize, 5] {
        let ucfg = CnfGrammar::from_grammar(&example4_ucfg(n));
        g.bench(&format!("count/{n}"), || {
            inside_at::<Count>(black_box(&ucfg), &UnitWeights, 2 * n)
        });
        let w = TableWeights(vec![MinPlus(Some(1)), MinPlus(Some(0))]);
        g.bench(&format!("tropical/{n}"), || {
            inside_at::<MinPlus>(black_box(&ucfg), &w, 2 * n)
        });
    }
}

/// Build and execute the suite; the caller decides what to do with the
/// finished records (write them via [`Suite::finish`], or read them).
pub(super) fn build(opts: Options) -> Suite {
    let mut suite = Suite::with_options("counting", opts);
    bench_count_ln(&mut suite);
    bench_count_automata(&mut suite);
    bench_factorized_join(&mut suite);
    bench_semiring_inside(&mut suite);
    suite
}
