//! End-to-end tests of the experiment orchestrator: the golden HTML
//! report, and the cold-run → cached-check → regression lifecycle
//! through the public `orchestrate::run` entry point.

use std::collections::BTreeMap;
use std::path::PathBuf;

use ucfg_bench::orchestrate::jobs::{JobResult, JobStatus, TimedEntry};
use ucfg_bench::orchestrate::{self, render, Config, RunReport};
use ucfg_support::baseline::{compare_exact, compare_timed, DiffSummary, Tolerance};

/// A fully fixed two-job run: every field pinned, so the rendered report
/// is byte-stable and can be compared against a committed golden file.
fn fixed_report() -> RunReport {
    let jobs = vec![
        JobResult {
            id: "exp/T1".to_string(),
            kind: "experiment",
            status: JobStatus::Ok,
            duration_ns: 1_234_567.0,
            digest: Some("fnv:00000000deadbeef".to_string()),
            detail: Some("n  |L_n|\n1  1\n2  7 & <escaped>\n".to_string()),
            timed: Vec::new(),
        },
        JobResult {
            id: "bench/parsing".to_string(),
            kind: "bench",
            status: JobStatus::Failed("panicked: boom".to_string()),
            duration_ns: 2_000_000.0,
            digest: None,
            detail: None,
            timed: vec![TimedEntry {
                name: "bench/parsing/cyk/4".to_string(),
                median_ns: 1_500_000.0,
                smoke: true,
            }],
        },
    ];
    let tolerance = Tolerance {
        max_ratio: 5.0,
        floor_ns: 1_000_000.0,
    };
    let comparisons = vec![
        compare_exact(
            "exp/T1",
            Some("fnv:00000000deadbeef"),
            "fnv:00000000deadbeef",
        ),
        compare_timed(
            "bench/parsing/cyk/4",
            Some(2_000_000.0),
            1_500_000.0,
            tolerance,
        ),
    ];
    let diff_summary = DiffSummary::of(&comparisons);
    RunReport {
        profile: "smoke".to_string(),
        threads: 4,
        jobs,
        cache_hits: 1,
        cache_misses: 1,
        checked: true,
        baseline_label: "baselines/smoke.json".to_string(),
        tolerance,
        comparisons,
        diff_summary,
        stale_baseline_entries: vec!["exp/T99".to_string()],
        total_duration_ns: 3_456_789_012.0,
    }
}

#[test]
fn html_report_matches_golden_file() {
    let actual = render::render_report(&fixed_report());
    let golden_path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/report.html");
    if std::env::var_os("UCFG_UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &actual).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", golden_path.display()));
    if actual != golden {
        let out = std::env::temp_dir().join("ucfg_orchestrate_report_actual.html");
        std::fs::write(&out, &actual).unwrap();
        panic!(
            "rendered report differs from {}; actual written to {}\n\
             (regenerate with UCFG_UPDATE_GOLDEN=1 cargo test -p ucfg-bench --test orchestrate)",
            golden_path.display(),
            out.display()
        );
    }
}

#[test]
fn report_escapes_and_shows_the_essentials() {
    let html = render::render_report(&fixed_report());
    // Raw artifact text is escaped, never inline HTML.
    assert!(html.contains("7 &amp; &lt;escaped&gt;"), "escaping");
    assert!(!html.contains("<escaped>"));
    // Both strata and the stale entry are visible.
    assert!(html.contains("exp/T1"));
    assert!(html.contains("bench/parsing/cyk/4"));
    assert!(html.contains("exp/T99"));
    // Self-contained: no scripts, no external fetches.
    assert!(!html.contains("<script"));
    assert!(!html.contains("http://") && !html.contains("https://"));
}

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("ucfg_orc_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn lifecycle_cold_run_cached_check_then_regression() {
    let root = tmp_dir("lifecycle");
    let baseline = root.join("baselines/smoke.json");
    let cfg = Config {
        smoke: true,
        filter: Some("exp/F".to_string()), // exp/F1 + exp/F2: fast, deterministic
        out_dir: Some(root.join("out")),
        cache_dir: Some(root.join("cache")),
        baseline_path: Some(baseline.clone()),
        write_baseline: true,
        ..Config::default()
    };

    // Cold run: everything executes, a baseline is written.
    let cold = orchestrate::run(&cfg).unwrap();
    assert!(!cold.is_failure(), "{}", cold.summary);
    assert!(baseline.is_file());
    let det = root.join("out/orchestrate/deterministic.json");
    let cold_det = std::fs::read_to_string(&det).unwrap();
    assert!(cold_det.contains("exp/F1") && cold_det.contains("exp/F2"));
    assert!(root.join("out/orchestrate/report.html").is_file());
    assert!(root.join("out/orchestrate/run.json").is_file());

    // Warm run under --check: artifacts come from the cache, digests
    // still match the baseline, and the deterministic stratum is
    // byte-identical to the cold run's.
    let warm_cfg = Config {
        write_baseline: false,
        check: true,
        ..cfg.clone()
    };
    let warm = orchestrate::run(&warm_cfg).unwrap();
    assert!(!warm.is_failure(), "{}", warm.summary);
    assert!(warm.summary.contains("2 cached"), "{}", warm.summary);
    assert_eq!(std::fs::read_to_string(&det).unwrap(), cold_det);

    // A tampered baseline digest is a regression and fails the check.
    let text = std::fs::read_to_string(&baseline).unwrap();
    let broken = text.replace("fnv:", "fnv:f00d");
    assert_ne!(text, broken);
    std::fs::write(&baseline, broken).unwrap();
    let bad = orchestrate::run(&warm_cfg).unwrap();
    assert!(bad.is_failure());
    assert!(bad.regressions >= 2, "{}", bad.summary);
    assert!(bad.summary.contains("REGRESSION"), "{}", bad.summary);

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn list_mode_names_every_job_without_running() {
    let cfg = Config {
        smoke: true,
        list: true,
        out_dir: Some(tmp_dir("list")),
        ..Config::default()
    };
    let out = orchestrate::run(&cfg).unwrap();
    let ids: Vec<&str> = out.summary.lines().collect();
    assert_eq!(ids.len(), 41, "{ids:?}");
    assert!(ids.contains(&"exp/T24"));
    assert!(ids.contains(&"bench/wordset_kernels"));
    assert!(ids.contains(&"bench/simd_kernels"));
    assert!(ids.contains(&"bench/stream_kernels"));
    assert!(ids.contains(&"check/kernels_threads"));
    // Nothing was written: list mode is pure.
    assert!(!tmp_dir("list").join("orchestrate").exists());
}

#[test]
fn unmatched_filter_is_an_error() {
    let cfg = Config {
        smoke: true,
        filter: Some("no-such-job".to_string()),
        out_dir: Some(tmp_dir("nofilter")),
        ..Config::default()
    };
    let err = orchestrate::run(&cfg).unwrap_err();
    assert!(err.contains("no jobs match"), "{err}");
}

#[test]
fn baseline_check_semantics_match_the_library() {
    // The orchestrator's own check() is exercised end-to-end above; this
    // pins the corner the gate depends on — exact mismatches regress even
    // when every timed entry is fine.
    let mut b = orchestrate::baselines::Baseline::new("smoke");
    b.exact.insert("exp/F1".into(), "fnv:aaaa".into());
    let mut exact = BTreeMap::new();
    exact.insert("exp/F1".to_string(), "fnv:bbbb".to_string());
    let out = orchestrate::baselines::check(&exact, &BTreeMap::new(), &b, b.tolerance);
    let summary = DiffSummary::of(&out.comparisons);
    assert_eq!(summary.regressions, 1);
}
